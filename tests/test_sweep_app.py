"""Wavefront sweep proxy: grid mapping, pipelining, completion."""

import numpy as np
import pytest

from repro.apps.sweep import SweepConfig, grid_shape, run_sweep
from repro.config import ClusterConfig, MachineConfig, MpiConfig, NoiseConfig
from repro.system import System
from repro.units import ms, s, us


def quiet_system(n_nodes=2, cpn=8, seed=0):
    return System(
        ClusterConfig(
            machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpn),
            mpi=MpiConfig(progress_threads_enabled=False),
            noise=NoiseConfig(),
            seed=seed,
        )
    )


class TestGridShape:
    @pytest.mark.parametrize(
        "n,expected", [(16, (4, 4)), (12, (3, 4)), (8, (2, 4)), (7, (1, 7)), (36, (6, 6))]
    )
    def test_most_square(self, n, expected):
        assert grid_shape(n) == expected

    def test_product_preserved(self):
        for n in range(1, 50):
            px, py = grid_shape(n)
            assert px * py == n


class TestSweepConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(sweeps=0)
        with pytest.raises(ValueError):
            SweepConfig(planes=0)


class TestSweepRun:
    def test_completes_and_records(self):
        res = run_sweep(quiet_system(), 16, 8, SweepConfig(sweeps=4, planes=5))
        assert len(res.sweep_times_us) == 4
        assert res.grid == (4, 4)
        assert res.elapsed_us > 0

    def test_all_four_directions(self):
        """Sweeps alternate corners; 4+ sweeps exercise every direction."""
        res = run_sweep(quiet_system(), 8, 8, SweepConfig(sweeps=8, planes=4))
        assert len(res.sweep_times_us) == 8

    def test_pipeline_scales_with_planes(self):
        short = run_sweep(quiet_system(), 8, 8, SweepConfig(sweeps=2, planes=4))
        long = run_sweep(quiet_system(), 8, 8, SweepConfig(sweeps=2, planes=16))
        assert long.mean_sweep_us > short.mean_sweep_us

    def test_sweep_time_near_ideal_when_quiet(self):
        cfg = SweepConfig(sweeps=3, planes=10, block_compute_us=us(400))
        res = run_sweep(quiet_system(), 16, 8, cfg)
        ideal = res.ideal_sweep_us(per_hop_us=50.0)
        assert res.mean_sweep_us >= ideal * 0.5
        assert res.mean_sweep_us <= ideal * 3.0

    def test_single_rank_degenerate(self):
        res = run_sweep(quiet_system(n_nodes=1, cpn=2), 2, 2, SweepConfig(sweeps=2, planes=3))
        assert len(res.sweep_times_us) == 2

    def test_deterministic(self):
        a = run_sweep(quiet_system(seed=3), 8, 8, SweepConfig(sweeps=3, planes=5))
        b = run_sweep(quiet_system(seed=3), 8, 8, SweepConfig(sweeps=3, planes=5))
        assert np.array_equal(a.sweep_times_us, b.sweep_times_us)


class TestWaitModeAndSensitivity:
    def test_block_mode_charges_wakeup_cost(self):
        from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
        from repro.config import MpiConfig

        def run(mode):
            sysm = System(
                ClusterConfig(
                    machine=MachineConfig(n_nodes=2, cpus_per_node=8),
                    mpi=MpiConfig(progress_threads_enabled=False, wait_mode=mode),
                    noise=NoiseConfig(),
                )
            )
            return run_aggregate_trace(
                sysm, 16, 8, AggregateTraceConfig(calls_per_loop=40, compute_between_us=0.0)
            ).mean_us

        # Quiet machine: blocking's per-message wakeup tax makes it slower.
        assert run("block") > run("poll")

    def test_waitmode_experiment_smoke(self):
        from repro.experiments.workloads import format_waitmode, run_waitmode

        res = run_waitmode(n_ranks=16, tpn=8, calls=100, time_compression=60.0)
        assert res.quiet_poll_advantage > 1.0  # poll wins on a quiet box
        assert "MP_WAIT_MODE" in format_waitmode(res)

    def test_sensitivity_experiment_smoke(self):
        from repro.experiments.workloads import format_sensitivity, run_sensitivity

        res = run_sensitivity(n_ranks=16, tpn=8, time_compression=60.0)
        assert res.collective_slowdown > 1.0
        assert res.wavefront_slowdown > 1.0
        assert "sensitivity" in format_sensitivity(res)

    def test_granularity_experiment_smoke(self):
        from repro.experiments.workloads import format_granularity, run_granularity

        res = run_granularity(
            n_ranks=256, compute_grid=(1_000.0, 50_000.0), n_calls=60
        )
        assert res.vanilla_efficiency[0] <= 1.0
        assert res.prototype_efficiency[-1] <= 1.05
        assert "granularity" in format_granularity(res)
