"""MPI point-to-point: delivery, ordering, wait modes."""

import pytest

from repro.config import ClusterConfig, MachineConfig, MpiConfig
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import ms, s


def run_job(body_factory, n_ranks=2, tpn=2, mpi=None, n_nodes=2, cpn=2, seed=0):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpn),
        mpi=mpi if mpi is not None else MpiConfig(progress_threads_enabled=False),
        seed=seed,
    )
    cluster = Cluster(cfg)
    job = MpiJob(cluster, cluster.place(n_ranks, tpn), body_factory, config=cfg.mpi)
    job.run(horizon_us=s(30))
    return cluster, job


class TestSendRecv:
    def test_payload_delivered(self):
        got = {}

        def body(rank, api):
            if rank == 0:
                yield from api.send(1, "tag", {"k": 41})
            else:
                got["payload"] = yield from api.recv(0, "tag")

        run_job(body)
        assert got["payload"] == {"k": 41}

    def test_recv_before_send_spins_until_arrival(self):
        times = {}

        def body(rank, api):
            if rank == 0:
                yield from api.compute(ms(2))
                yield from api.send(1, "t", "late")
            else:
                t0 = api.now
                yield from api.recv(0, "t")
                times["waited"] = api.now - t0

        run_job(body)
        assert times["waited"] >= ms(2)

    def test_send_before_recv_buffers(self):
        got = {}

        def body(rank, api):
            if rank == 0:
                yield from api.send(1, "t", "early")
            else:
                yield from api.compute(ms(2))
                got["v"] = yield from api.recv(0, "t")

        run_job(body)
        assert got["v"] == "early"

    def test_message_order_preserved_same_tag(self):
        got = []

        def body(rank, api):
            if rank == 0:
                for i in range(5):
                    yield from api.send(1, "t", i)
            else:
                for _ in range(5):
                    got.append((yield from api.recv(0, "t")))

        run_job(body)
        assert got == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        got = {}

        def body(rank, api):
            if rank == 0:
                yield from api.send(1, "a", "A")
                yield from api.send(1, "b", "B")
            else:
                got["b"] = yield from api.recv(0, "b")
                got["a"] = yield from api.recv(0, "a")

        run_job(body)
        assert got == {"a": "A", "b": "B"}

    def test_intra_node_faster_than_inter_node(self):
        times = {}

        def make(key):
            def body(rank, api):
                if rank == 0:
                    t0 = api.now
                    yield from api.send(1, "t", None)
                    yield from api.recv(1, "u")
                    times[key] = api.now - t0
                else:
                    yield from api.recv(0, "t")
                    yield from api.send(0, "u", None)

            return body

        run_job(make("intra"), n_ranks=2, tpn=2)       # same node
        run_job(make("inter"), n_ranks=2, tpn=1)       # different nodes
        assert times["intra"] < times["inter"]

    def test_block_wait_mode(self):
        mpi = MpiConfig(progress_threads_enabled=False, wait_mode="block")
        got = {}

        def body(rank, api):
            if rank == 0:
                yield from api.compute(ms(1))
                yield from api.send(1, "t", 7)
            else:
                got["v"] = yield from api.recv(0, "t")

        run_job(body, mpi=mpi)
        assert got["v"] == 7

    def test_exchange_is_deadlock_free(self):
        """Symmetric eager send-then-recv on both sides must complete."""

        def body(rank, api):
            other = 1 - rank
            yield from api.send(other, "x", rank)
            got = yield from api.recv(other, "x")
            assert got == other

        run_job(body)


class TestJobLifecycle:
    def test_elapsed_and_finish_time(self):
        def body(rank, api):
            yield from api.compute(ms(1))

        cluster, job = run_job(body)
        assert job.done
        assert job.elapsed_us >= ms(1)

    def test_unfinished_raises_on_horizon(self):
        def body(rank, api):
            if rank == 1:
                yield from api.recv(0, "never")  # deadlock by design

        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=1, cpus_per_node=2),
            mpi=MpiConfig(progress_threads_enabled=False),
        )
        cluster = Cluster(cfg)
        job = MpiJob(cluster, cluster.place(2, 2), body, config=cfg.mpi)
        with pytest.raises(RuntimeError, match="incomplete"):
            job.run(horizon_us=ms(50))

    def test_finish_time_before_done_raises(self):
        def body(rank, api):
            yield from api.compute(ms(100))

        cfg = ClusterConfig(machine=MachineConfig(n_nodes=1, cpus_per_node=2))
        cluster = Cluster(cfg)
        job = MpiJob(cluster, cluster.place(2, 2), body)
        with pytest.raises(RuntimeError):
            _ = job.finish_time

    def test_timer_threads_spawned_and_stop(self):
        mpi = MpiConfig(progress_threads_enabled=True, progress_interval_us=ms(5))

        def body(rank, api):
            yield from api.compute(ms(12))

        cluster, job = run_job(body, mpi=mpi)
        assert len(job.timer_threads) == 2
        # After completion the timer bodies exit at their next wake.
        cluster.sim.run_until(cluster.sim.now + ms(600))
        assert all(t.finished for t in job.timer_threads)

    def test_priority_mirroring_to_timer_threads(self):
        mpi = MpiConfig(progress_threads_enabled=True)

        def body(rank, api):
            yield from api.compute(ms(5))

        cfg = ClusterConfig(machine=MachineConfig(n_nodes=1, cpus_per_node=2), mpi=mpi)
        cluster = Cluster(cfg)
        job = MpiJob(cluster, cluster.place(2, 2), body, config=mpi)
        task0 = job.tasks[0]
        timer0 = job.timer_threads[0]
        cluster.nodes[0].scheduler.set_priority(task0, 30)
        assert timer0.priority == 30

    def test_trace_marks_via_api(self):
        from repro.trace.recorder import TraceRecorder

        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=1, cpus_per_node=2),
            mpi=MpiConfig(progress_threads_enabled=False),
        )
        cluster = Cluster(cfg, trace=TraceRecorder())

        def body(rank, api):
            api.trace_mark("hello", payload=rank)
            yield from api.compute(1.0)

        job = MpiJob(cluster, cluster.place(2, 2), body, config=cfg.mpi)
        job.run(horizon_us=s(1))
        assert len(cluster.trace.marks_named("hello")) == 2
