"""The SchedPolicy zoo: validation, plumbing, and cross-policy invariants.

The dispatch-core extraction promises two things at once: the ``aix``
default is bit-identical to the pre-refactor scheduler (held elsewhere by
the golden perf_smoke digests), and *every* zoo member — however exotic
its dispatch order — still satisfies the properties any policy must:
threads are never lost or duplicated across place/steal/rotate, no CPU
idles while dispatchable work waits, every run is seed-deterministic,
and the experiment harness produces byte-identical journals serially and
under ``--jobs 2``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import SweepJournal
from repro.config import KernelConfig
from repro.kernel.policy import policy_names, policy_param_names, validate_policy
from repro.kernel.schedtune import Schedtune
from repro.kernel.thread import Compute, Sleep, ThreadState
from repro.rng import StreamFactory
from repro.units import s
from tests.conftest import make_harness

#: Every shipped policy, plus the param variants worth sweeping.
POLICIES = ("aix", "fair", "quantum", "lottery")
POLICY_VARIANTS = [
    ("aix", {}),
    ("fair", {}),
    ("fair", {"min_granularity_us": 2500.0}),
    ("quantum", {}),
    ("quantum", {"slice_us": 3000.0}),
    ("lottery", {}),
]


def policy_harness(policy, params=(), n_cpus=4, **kernel_kw):
    kernel = KernelConfig(
        context_switch_us=2.0,
        policy=policy,
        policy_params=dict(params),
        **kernel_kw,
    )
    return make_harness(n_cpus=n_cpus, kernel=kernel, rng_streams=StreamFactory(7))


# ----------------------------------------------------------------------
# Registry / config validation (the FaultConfig.validate_targets
# discipline: impossible configurations die at construction, loudly)
# ----------------------------------------------------------------------


class TestValidation:
    def test_zoo_is_registered(self):
        assert set(POLICIES) <= set(policy_names())

    def test_unknown_policy_raises_listing_registry(self):
        with pytest.raises(ValueError, match="aix"):
            KernelConfig(policy="cfs2")

    def test_unknown_param_raises(self):
        with pytest.raises(ValueError, match="slice_us"):
            KernelConfig(policy="quantum", policy_params={"timeslice": 1000.0})

    def test_param_on_paramless_policy_raises(self):
        with pytest.raises(ValueError):
            KernelConfig(policy="aix", policy_params={"slice_us": 1000.0})

    def test_bad_param_value_raises(self):
        with pytest.raises(ValueError):
            KernelConfig(policy="quantum", policy_params={"slice_us": -5.0})
        with pytest.raises(ValueError):
            KernelConfig(policy="fair", policy_params={"min_granularity_us": 0.0})

    def test_params_normalized_to_sorted_tuple(self):
        cfg = KernelConfig(policy="quantum", policy_params={"slice_us": 3000.0})
        assert cfg.policy_params == (("slice_us", 3000.0),)

    def test_params_must_be_mapping_like(self):
        with pytest.raises(ValueError, match="policy_params"):
            KernelConfig(policy="aix", policy_params=42)

    def test_validate_policy_direct(self):
        validate_policy("lottery", (("slice_us", 500.0),))
        with pytest.raises(ValueError, match="registered"):
            validate_policy("nosuch")

    def test_param_names_exposed(self):
        assert policy_param_names("aix") == ()
        assert "slice_us" in policy_param_names("quantum")
        assert "min_granularity_us" in policy_param_names("fair")


class TestSchedtunePolicy:
    def test_dotted_param_staging(self):
        st_ = Schedtune()
        st_.set("policy", "quantum")
        st_.set("policy.slice_us", 5000.0)
        cfg = st_.commit()
        assert cfg.policy == "quantum"
        assert cfg.policy_params == (("slice_us", 5000.0),)

    def test_dotted_param_checked_against_staged_policy(self):
        st_ = Schedtune()
        with pytest.raises(KeyError, match="aix"):
            st_.set("policy.slice_us", 5000.0)  # aix has no tunables
        st_.set("policy", "fair")
        with pytest.raises(KeyError, match="min_granularity_us"):
            st_.set("policy.slice_us", 5000.0)

    def test_policy_is_a_documented_option(self):
        assert Schedtune.describe("policy")


# ----------------------------------------------------------------------
# Policy-specific construction contracts
# ----------------------------------------------------------------------


class TestLotteryRng:
    def test_lottery_without_rng_streams_raises(self):
        with pytest.raises(ValueError, match="rng"):
            make_harness(kernel=KernelConfig(policy="lottery"))

    def test_lottery_with_rng_streams_runs(self):
        h = policy_harness("lottery")
        t = h.spawn(h.worker("w", [500.0]), name="w")
        h.run(s(1))
        assert t.state is ThreadState.FINISHED


class TestSnapshotHooks:
    @pytest.mark.parametrize("policy,params", POLICY_VARIANTS)
    def test_snapshot_names_policy_and_params(self, policy, params):
        h = policy_harness(policy, params)
        snap = h.sched.policy.snapshot_state(None)
        assert snap["name"] == policy
        recorded = dict(snap["params"])
        # Every supplied param is recorded at its supplied value; unset
        # declared params appear at their defaults.
        for k, v in params.items():
            assert recorded[k] == v
        assert set(recorded) == set(policy_param_names(policy))

    def test_fair_snapshot_carries_floor(self):
        # Two contending threads on one CPU: the loser requeues with
        # accumulated vruntime, so re-picking it must raise the floor.
        h = policy_harness("fair", {"min_granularity_us": 50.0}, n_cpus=1)
        tick = h.config.physical_tick_period_us
        h.spawn(h.worker("a", [5.0 * tick], record=False), name="a")
        h.spawn(h.worker("b", [5.0 * tick], record=False), name="b")
        h.run(s(60))
        assert h.sched.policy.snapshot_state(None)["vrt_floor"] > 0.0


# ----------------------------------------------------------------------
# Cross-policy invariants under randomized workloads
# ----------------------------------------------------------------------

thread_spec = st.tuples(
    st.integers(min_value=10, max_value=120),  # priority
    st.integers(min_value=0, max_value=3),  # affinity cpu
    st.booleans(),  # allow_steal
    st.lists(st.floats(min_value=1.0, max_value=15_000.0), min_size=1, max_size=3),
    st.lists(st.floats(min_value=0.0, max_value=20_000.0), max_size=2),
)

routing_options = st.fixed_dictionaries(
    {
        "daemons_global_queue": st.booleans(),
        "steal_enabled": st.booleans(),
    }
)


def build_workload(policy, params, specs, kernel_kwargs):
    h = policy_harness(policy, params, **kernel_kwargs)
    threads = []
    for i, (prio, cpu, steal, bursts, sleeps) in enumerate(specs):
        def body(bursts=bursts, sleeps=sleeps):
            for j, b in enumerate(bursts):
                yield Compute(b)
                if j < len(sleeps):
                    yield Sleep(sleeps[j])

        t = h.spawn(
            body(), name=f"t{i}", priority=prio, cpu=cpu, allow_steal=steal,
            use_global_queue=(i % 3 == 0),
        )
        threads.append(t)
    return h, threads


@pytest.mark.parametrize("policy,params", POLICY_VARIANTS)
class TestPolicyInvariants:
    @settings(max_examples=12, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=1, max_size=8),
           kernel_kwargs=routing_options)
    def test_liveness_and_no_lost_work(self, policy, params, specs, kernel_kwargs):
        """Every thread finishes and is credited at least the compute it
        asked for — no policy may lose a thread or its work."""
        h, threads = build_workload(policy, params, specs, kernel_kwargs)
        h.run(s(10))
        for t, (prio, cpu, steal, bursts, sleeps) in zip(threads, specs):
            assert t.state is ThreadState.FINISHED, f"{t!r} never finished"
            assert t.stats.cpu_time_us >= sum(bursts) - 1e-6

    @settings(max_examples=10, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=2, max_size=8),
           kernel_kwargs=routing_options)
    def test_no_duplicated_or_orphaned_threads(self, policy, params, specs,
                                               kernel_kwargs):
        """At any sampled instant each thread exists exactly once: on one
        CPU, or in one queue (READY), or off the machine entirely."""
        h, threads = build_workload(policy, params, specs, kernel_kwargs)
        violations = []

        def probe():
            queued = {}
            queues = list(h.sched.local_queues) + [h.sched.global_queue]
            for q in queues:
                for t in q.threads():
                    queued[t] = queued.get(t, 0) + 1
            on_cpu = [c.thread for c in h.sched.cpus if c.thread is not None]
            for t in threads:
                n_q = queued.get(t, 0)
                n_c = on_cpu.count(t)
                if n_q + n_c > 1:
                    violations.append(f"{t} appears {n_q}q+{n_c}cpu times")
                if t.state is ThreadState.READY and n_q != 1:
                    violations.append(f"{t} READY but queued {n_q} times")
                if t.state is ThreadState.RUNNING and (n_c != 1 or n_q != 0):
                    violations.append(f"{t} RUNNING with {n_q}q+{n_c}cpu")
            if h.sim.now < s(1):
                h.sim.schedule(139.0, probe)

        h.sim.schedule(0.0, probe)
        h.run(s(10))
        assert violations == []

    @settings(max_examples=10, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=2, max_size=8),
           kernel_kwargs=routing_options)
    def test_work_conservation_no_idle_with_waiter(self, policy, params, specs,
                                                   kernel_kwargs):
        """No CPU may sit idle while a thread it could legally run waits.

        A suspect (idle CPU, dispatchable READY thread) pair is
        re-checked a few µs later so same-timestamp event ordering can't
        produce false alarms; a *persisting* pair is a real conservation
        bug in place/pick/steal.

        aix is exempt: after a tick-boundary preemption a worse-priority
        thread can legitimately wait while another CPU idles — that is
        the extracted pre-refactor dispatcher verbatim, frozen by the
        bit-identical golden digests, so the zoo policies fix it (via
        ``_fill_idle``) and aix keeps it."""
        if policy == "aix":
            pytest.skip("pre-refactor verbatim behaviour, held bit-identical")
        h, threads = build_workload(policy, params, specs, kernel_kwargs)
        violations = []
        sched = h.sched

        def dispatchable(cpu_idx, t):
            q = sched.policy.queue_for(t)
            if q is sched.global_queue or q is sched.local_queues[cpu_idx]:
                return True
            return h.config.steal_enabled and t.allow_steal

        def confirm(cpu_idx, t):
            if (
                sched.cpus[cpu_idx].idle
                and t.state is ThreadState.READY
                and dispatchable(cpu_idx, t)
            ):
                violations.append(f"cpu{cpu_idx} idle while {t} waits @{h.sim.now}")

        def probe():
            idle = [c.index for c in sched.cpus if c.idle]
            if idle:
                for t in threads:
                    if t.state is not ThreadState.READY:
                        continue
                    for cpu_idx in idle:
                        if dispatchable(cpu_idx, t):
                            h.sim.schedule(3.0, confirm, cpu_idx, t)
                            break
            if h.sim.now < s(1):
                h.sim.schedule(151.0, probe)

        h.sim.schedule(7.0, probe)
        h.run(s(10))
        assert violations == []

    @settings(max_examples=10, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=1, max_size=6),
           kernel_kwargs=routing_options)
    def test_deterministic_replay(self, policy, params, specs, kernel_kwargs):
        """Identical inputs (including the lottery's named rng stream)
        give identical schedules."""
        h1, t1 = build_workload(policy, params, specs, kernel_kwargs)
        h1.run(s(10))
        h2, t2 = build_workload(policy, params, specs, kernel_kwargs)
        h2.run(s(10))
        for a, b in zip(t1, t2):
            assert a.stats.cpu_time_us == b.stats.cpu_time_us
            assert a.stats.dispatches == b.stats.dispatches
            assert a.stats.preemptions == b.stats.preemptions


class TestAixOrdering:
    def test_priority_order_preserved_on_one_cpu(self):
        """aix semantics: numerically lower priority finishes first on a
        contended CPU (the extracted dispatcher still honors strict
        priority dispatch with tick-boundary preemption noticing)."""
        h = policy_harness("aix", n_cpus=1)
        tick = h.config.physical_tick_period_us
        done = []
        prios = [90, 30, 60, 110, 10]

        def body(p):
            yield Compute(3.0 * tick)
            done.append(p)

        for p in prios:
            h.spawn(body(p), name=f"p{p}", priority=p, cpu=0)
        h.run(s(60))
        assert len(done) == len(prios)
        # The favored (lowest-value) thread always completes first; full
        # completion order is priority order.
        assert done == sorted(prios)


# ----------------------------------------------------------------------
# Experiment harness: serial vs --jobs 2 byte-identical, per policy
# ----------------------------------------------------------------------


def _journal_bytes(journal):
    return {p.name: p.read_bytes() for p in sorted(journal.dir.glob("*.json"))}


@pytest.mark.parametrize("policy", POLICIES)
def test_policyzoo_serial_vs_jobs2_identical(policy, tmp_path):
    """The acceptance criterion on the ablation experiment itself: for
    every policy the journaled trial records are byte-identical whether
    the grid runs serially or fanned out over worker processes."""
    from repro.experiments.policyzoo import run_policyzoo

    kw = dict(policies=[policy], sizes=(8,), calls=30, seed=5)
    js = SweepJournal(tmp_path / "serial")
    jp = SweepJournal(tmp_path / "par")
    serial = run_policyzoo(journal=js, jobs=1, **kw)
    parallel = run_policyzoo(journal=jp, jobs=2, **kw)
    assert serial.digests == parallel.digests
    assert serial.mean_us == parallel.mean_us
    assert _journal_bytes(js) == _journal_bytes(jp)
