"""Fault injection & resilience: primitives, reliable transport, watchdog
recovery, graceful degradation, and the zero-overhead / determinism
invariants the subsystem promises."""

import numpy as np
import pytest

from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    CoschedFaultSpec,
    FaultConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NodeFaultSpec,
    NoiseConfig,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.faults.injector import NetFaultPlane
from repro.kernel.thread import Compute, ThreadState
from repro.net.fabric import MessageStats
from repro.sim.core import Simulator
from repro.system import System
from repro.trace.analysis import attribute_faults, fault_summary
from repro.trace.recorder import TraceRecorder
from repro.units import ms, s


def build_system(
    n_nodes=2,
    cpn=4,
    faults=None,
    cosched=None,
    kernel=None,
    noise=None,
    seed=7,
    trace=None,
):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpn),
        kernel=kernel if kernel is not None else KernelConfig(),
        noise=noise if noise is not None else NoiseConfig(),
        mpi=MpiConfig(progress_threads_enabled=False),
        cosched=cosched if cosched is not None else CoschedConfig(enabled=False),
        faults=faults if faults is not None else FaultConfig(),
        seed=seed,
    )
    return System(cfg, trace=trace)


def allreduce_job(system, n_ranks=8, tpn=4, calls=4, compute_us=200.0, horizon=s(60)):
    """Launch a compute+allreduce loop; return (elapsed, per-rank results)."""
    results = []

    def body(rank, api):
        acc = 0
        for _ in range(calls):
            yield from api.compute(compute_us)
            acc = yield from api.allreduce(1)
        results.append(acc)

    job = system.launch(n_ranks, tpn, body)
    elapsed = job.run(horizon_us=horizon)
    return elapsed, results


def compute_job(system, duration_us, n_ranks=4, tpn=4, horizon=s(60)):
    """Launch a pure-compute job; return elapsed µs."""

    def body(rank, api):
        yield from api.compute(duration_us)

    job = system.launch(n_ranks, tpn, body)
    return job.run(horizon_us=horizon)


def normalized_intervals(trace):
    """Trace stream with tids renumbered by first appearance (the tid
    counter is process-global, so raw tids differ between runs)."""
    remap = {}
    out = []
    for iv in trace.intervals:
        tid = remap.setdefault(iv.tid, len(remap))
        out.append((iv.node, iv.cpu, tid, iv.name, iv.category, iv.t0, iv.t1))
    return out


class FixedRng:
    """Deterministic stand-in for an rng stream; proves draw counts too."""

    def __init__(self, values=()):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestFaultConfigValidation:
    def test_defaults_disabled_and_clean(self):
        fc = FaultConfig()
        assert not fc.enabled and not fc.any_net_faults

    def test_any_net_faults(self):
        assert FaultConfig(msg_drop_prob=0.1).any_net_faults
        assert FaultConfig(msg_dup_prob=0.1).any_net_faults
        assert FaultConfig(msg_delay_prob=0.1).any_net_faults

    @pytest.mark.parametrize(
        "kw",
        [
            {"msg_drop_prob": 1.5},
            {"pipe_loss_prob": -0.1},
            {"net_window_us": (10.0, 5.0)},
            {"retransmit_timeout_us": 0.0},
            {"retransmit_backoff": 0.5},
            {"retransmit_max_attempts": 0},
            {"watchdog_interval_us": 0.0},
            {"clock_drift_rate": -1e-4},
        ],
    )
    def test_bad_values_raise(self, kw):
        with pytest.raises(ValueError):
            FaultConfig(**kw)

    def test_node_fault_spec_validation(self):
        with pytest.raises(ValueError):
            NodeFaultSpec(node=0, at_us=0.0, duration_us=1.0, kind="melt")
        with pytest.raises(ValueError):
            NodeFaultSpec(node=0, at_us=0.0, duration_us=0.0)
        with pytest.raises(ValueError):
            NodeFaultSpec(node=0, at_us=0.0, duration_us=1.0, kind="slowdown", fraction=1.5)

    def test_cosched_fault_spec_validation(self):
        with pytest.raises(ValueError):
            CoschedFaultSpec(node=0, at_us=0.0, kind="sulk")
        with pytest.raises(ValueError):
            CoschedFaultSpec(node=0, at_us=0.0, kind="hang", duration_us=0.0)

    @pytest.mark.parametrize(
        "kw",
        [
            {"net_window_us": (-1.0, 5.0)},
            {"timesync_loss_at_us": -1.0},
        ],
    )
    def test_negative_times_raise(self, kw):
        with pytest.raises(ValueError):
            FaultConfig(**kw)

    def test_unknown_node_targets_rejected(self):
        fc = FaultConfig(
            node_faults=(NodeFaultSpec(node=5, at_us=0.0, duration_us=1.0),),
            cosched_faults=(CoschedFaultSpec(node=7, at_us=0.0, kind="die"),),
        )
        with pytest.raises(ValueError, match=r"unknown node\(s\) \[5, 7\]"):
            fc.validate_targets(2)
        fc.validate_targets(8)  # all targets in range: accepted

    def test_system_rejects_fault_on_missing_node_at_construction(self):
        faults = FaultConfig(
            enabled=True,
            node_faults=(NodeFaultSpec(node=9, at_us=0.0, duration_us=1.0),),
        )
        with pytest.raises(ValueError, match="unknown node"):
            build_system(n_nodes=2, faults=faults)

    def test_injector_refuses_disabled_config(self):
        from repro.faults.injector import FaultInjector

        sysm = build_system()
        with pytest.raises(ValueError):
            FaultInjector(sysm.cluster, FaultConfig())

    def test_disabled_faults_install_nothing(self):
        sysm = build_system(faults=FaultConfig(enabled=False, msg_drop_prob=0.9))
        assert sysm.injector is None
        assert sysm.cluster.fabric.fault_plane is None


# ----------------------------------------------------------------------
# Network fault plane (unit)
# ----------------------------------------------------------------------
class _OneStreamFactory:
    """Stream factory stub handing every named stream the same scripted
    rng — unit tests drive one fault type on one link at a time, so a
    single shared script keeps the draws explicit."""

    def __init__(self, rng):
        self.rng = rng

    def stream(self, name):
        return self.rng


class TestNetFaultPlane:
    def _plane(self, cfg, rng):
        return NetFaultPlane(Simulator(), cfg, _OneStreamFactory(rng), MessageStats())

    def test_clean_when_no_draw_hits(self):
        cfg = FaultConfig(enabled=True, msg_drop_prob=0.1)
        assert self._plane(cfg, FixedRng([0.9])).plan(0, 1, 64) == (0.0,)

    def test_drop(self):
        cfg = FaultConfig(enabled=True, msg_drop_prob=1.0)
        plane = self._plane(cfg, FixedRng([0.5]))
        assert plane.plan(0, 1, 64) == ()
        assert plane.drops == 1 and plane.stats.dropped == 1

    def test_delay(self):
        cfg = FaultConfig(enabled=True, msg_delay_prob=1.0, msg_delay_us=700.0)
        plane = self._plane(cfg, FixedRng([0.0]))
        assert plane.plan(0, 1, 64) == (700.0,)
        assert plane.delays == 1

    def test_duplicate(self):
        cfg = FaultConfig(enabled=True, msg_dup_prob=1.0, msg_delay_us=300.0)
        plane = self._plane(cfg, FixedRng([0.0]))
        assert plane.plan(0, 1, 64) == (0.0, 300.0)
        assert plane.dups == 1

    def test_same_node_never_faulted(self):
        cfg = FaultConfig(enabled=True, msg_drop_prob=1.0)
        # Empty rng: any draw would raise, proving none happens.
        assert self._plane(cfg, FixedRng()).plan(2, 2, 64) == (0.0,)

    def test_outside_window_never_faulted(self):
        cfg = FaultConfig(
            enabled=True, msg_drop_prob=1.0, net_window_us=(ms(10), ms(20))
        )
        assert self._plane(cfg, FixedRng()).plan(0, 1, 64) == (0.0,)


# ----------------------------------------------------------------------
# Network fault plane: stream-ordering properties (hypothesis)
# ----------------------------------------------------------------------
class TestNetFaultPlaneStreamProperties:
    """Pins the per-link, per-type stream contract in NetFaultPlane's
    docstring: a config replays identically, enabling one fault type
    never reshuffles another type's draws, and traffic on one link never
    reshuffles another link's draws (the shard-stability contract)."""

    N_MSGS = 60

    @staticmethod
    def _plane(seed, drop, delay, dup):
        from repro.rng import StreamFactory

        cfg = FaultConfig(
            enabled=True,
            msg_drop_prob=drop,
            msg_delay_prob=delay,
            msg_dup_prob=dup,
            msg_delay_us=500.0,
        )
        return NetFaultPlane(Simulator(), cfg, StreamFactory(seed), MessageStats())

    @staticmethod
    def _decisions(seed, drop, delay, dup):
        """Run N inter-node messages through a fresh plane; return the
        per-message plan tuples (the complete observable behaviour)."""
        plane = TestNetFaultPlaneStreamProperties._plane(seed, drop, delay, dup)
        return [
            plane.plan(0, 1, 64) for _ in range(TestNetFaultPlaneStreamProperties.N_MSGS)
        ]

    def test_replay_is_deterministic(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        prob = st.floats(0.0, 1.0, allow_nan=False)

        @settings(deadline=None, max_examples=40)
        @given(seed=st.integers(0, 2**31 - 1), drop=prob, delay=prob, dup=prob)
        def check(seed, drop, delay, dup):
            a = self._decisions(seed, drop, delay, dup)
            b = self._decisions(seed, drop, delay, dup)
            assert a == b

        check()

    def test_fault_types_draw_from_independent_streams(self):
        """Turning dup/delay on or off must not move which messages get
        dropped, and turning dup on or off must not move which get
        delayed — each type owns its stream."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        prob = st.floats(0.01, 0.99, allow_nan=False)

        @settings(deadline=None, max_examples=40)
        @given(seed=st.integers(0, 2**31 - 1), drop=prob, delay=prob, dup=prob)
        def check(seed, drop, delay, dup):
            full = self._decisions(seed, drop, delay, dup)
            drop_only = self._decisions(seed, drop, 0.0, 0.0)
            no_dup = self._decisions(seed, drop, delay, 0.0)
            dropped = [i for i, p in enumerate(full) if p == ()]
            assert dropped == [i for i, p in enumerate(drop_only) if p == ()]
            assert dropped == [i for i, p in enumerate(no_dup) if p == ()]
            delayed = [i for i, p in enumerate(full) if p and p[0] > 0.0]
            assert delayed == [i for i, p in enumerate(no_dup) if p and p[0] > 0.0]

        check()

    def test_links_draw_from_independent_streams(self):
        """Interleaving traffic on other links must not move a link's own
        decision sequence — the property that makes the fault plane
        shard-stable: a shard draws only for links whose source node it
        owns, in that node's local event order, and still reproduces the
        serial run's per-link decisions."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        prob = st.floats(0.05, 0.95, allow_nan=False)

        @settings(deadline=None, max_examples=40)
        @given(seed=st.integers(0, 2**31 - 1), drop=prob, dup=prob)
        def check(seed, drop, dup):
            n = TestNetFaultPlaneStreamProperties.N_MSGS
            alone = TestNetFaultPlaneStreamProperties._plane(seed, drop, 0.0, dup)
            solo = [alone.plan(0, 1, 64) for _ in range(n)]
            mixed = TestNetFaultPlaneStreamProperties._plane(seed, drop, 0.0, dup)
            interleaved = []
            for _ in range(n):
                mixed.plan(0, 2, 64)   # other dst
                interleaved.append(mixed.plan(0, 1, 64))
                mixed.plan(3, 1, 64)   # other src, same dst
            assert interleaved == solo

        check()


# ----------------------------------------------------------------------
# Reliable transport under a lossy fabric
# ----------------------------------------------------------------------
class TestReliableTransport:
    def test_total_drop_does_not_deadlock(self):
        """At msg_drop_prob=1 every attempt is eaten until the forced
        link-level path fires — collectives must still complete."""
        faults = FaultConfig(
            enabled=True,
            msg_drop_prob=1.0,
            retransmit_timeout_us=ms(1),
            retransmit_backoff=2.0,
            retransmit_max_timeout_us=ms(4),
            retransmit_max_attempts=3,
        )
        sysm = build_system(faults=faults)
        _, results = allreduce_job(sysm, calls=3)
        assert results == [8] * 8  # reduction semantics survive the chaos
        plane = sysm.injector.net_plane
        assert plane.drops > 0
        assert sysm.cluster.fabric.stats.dropped == plane.drops

    def test_forced_path_and_retransmit_counters(self):
        faults = FaultConfig(
            enabled=True,
            msg_drop_prob=1.0,
            retransmit_timeout_us=ms(1),
            retransmit_max_timeout_us=ms(4),
            retransmit_max_attempts=3,
        )
        sysm = build_system(faults=faults)
        job = sysm.launch(8, 4, lambda rank, api: api.allreduce(1))
        job.run(horizon_us=s(60))
        rel = job.world.reliability
        assert rel.forced > 0 and rel.retransmits >= rel.forced

    def test_duplicates_suppressed(self):
        faults = FaultConfig(enabled=True, msg_dup_prob=1.0, msg_delay_us=50.0)
        sysm = build_system(faults=faults)
        job = sysm.launch(8, 4, lambda rank, api: api.allreduce(1))
        job.run(horizon_us=s(60))
        assert job.world.reliability.duplicates_dropped > 0
        assert sysm.injector.net_plane.dups > 0

    def test_delay_slows_but_completes(self):
        clean_sys = build_system()
        clean, _ = allreduce_job(clean_sys, calls=4)
        faults = FaultConfig(enabled=True, msg_delay_prob=1.0, msg_delay_us=ms(1))
        slow_sys = build_system(faults=faults)
        slow, results = allreduce_job(slow_sys, calls=4)
        assert results == [8] * 8
        assert slow > clean
        assert slow_sys.injector.net_plane.delays > 0

    def test_backoff_cap_reached_exactly_at_retry_limit(self):
        """Edge case: the timeout hits max_timeout_us on the very retry
        that is also the last before the forced path.  The cap must apply
        (not overshoot), and the forced attempt must carry no timer.

        Timeline (timeout 10, backoff 2, cap 40, max_attempts 4):
        t=10 attempt 2 → timeout 20; t=30 attempt 3 → timeout 40 == cap;
        t=70 attempt 4 == limit → link-guaranteed path, no timer.
        """
        from repro.config import NetworkConfig
        from repro.mpi.messages import Message, ReliableTransport
        from repro.net.fabric import Fabric

        class DropAll:
            def plan(self, src, dst, nbytes):
                return ()  # every faultable copy is eaten

        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig())
        fabric.fault_plane = DropAll()
        delivered = []
        rel = ReliableTransport(
            sim, fabric, delivered.append,
            timeout_us=10.0, backoff=2.0, max_timeout_us=40.0, max_attempts=4,
        )
        rel.send(0, 1, Message(src=0, dst=1, tag=0, payload="p", nbytes=8))
        entry = rel._inflight[(0, 0)]
        assert (entry[3], entry[4]) == (1, 10.0)

        sim.run_until(11.0)
        assert (entry[3], entry[4]) == (2, 20.0)
        sim.run_until(31.0)
        assert (entry[3], entry[4]) == (3, 40.0)  # capped exactly, not 80
        assert entry[4] == rel.max_timeout_us
        sim.run_until(71.0)
        # Final attempt == max_attempts: forced path, timer slot cleared.
        assert entry[3] == rel.max_attempts
        assert entry[5] is None
        assert rel.forced == 1 and rel.retransmits == 3
        assert not delivered  # still on the wire

        sim.run(max_events=100)
        assert [m.payload for m in delivered] == ["p"]
        # The forced copy's ack retires the in-flight entry.
        assert rel._delivered == {(0, 0)} and not rel._inflight


# ----------------------------------------------------------------------
# Node-level fault primitives
# ----------------------------------------------------------------------
class TestNodeFaults:
    WORK = ms(30)
    FREEZE = ms(50)

    def _elapsed(self, faults=None, trace=None):
        sysm = build_system(n_nodes=1, faults=faults, trace=trace)
        return compute_job(sysm, self.WORK), sysm

    def test_crash_stalls_the_node(self):
        clean, _ = self._elapsed()
        crash = FaultConfig(
            enabled=True,
            node_faults=(NodeFaultSpec(node=0, at_us=ms(10), duration_us=self.FREEZE),),
        )
        frozen, sysm = self._elapsed(crash)
        assert frozen >= clean + 0.9 * self.FREEZE
        assert [ev.kind for ev in sysm.injector.events] == ["node_crash"]

    def test_slowdown_is_between_clean_and_crash(self):
        clean = self._elapsed()[0]
        slow_cfg = FaultConfig(
            enabled=True,
            node_faults=(
                NodeFaultSpec(
                    node=0,
                    at_us=ms(10),
                    duration_us=self.FREEZE,
                    kind="slowdown",
                    fraction=0.5,
                    period_us=ms(2),
                ),
            ),
        )
        slow = self._elapsed(slow_cfg)[0]
        crash_cfg = FaultConfig(
            enabled=True,
            node_faults=(NodeFaultSpec(node=0, at_us=ms(10), duration_us=self.FREEZE),),
        )
        frozen = self._elapsed(crash_cfg)[0]
        assert clean < slow < frozen

    def test_fault_events_reach_the_trace(self):
        crash = FaultConfig(
            enabled=True,
            node_faults=(NodeFaultSpec(node=0, at_us=ms(10), duration_us=ms(5)),),
        )
        trace = TraceRecorder()
        _, sysm = self._elapsed(crash, trace=trace)
        assert fault_summary(trace) == {"node_crash": 1}
        assert trace.faults[0].time == ms(10)


# ----------------------------------------------------------------------
# Clock faults
# ----------------------------------------------------------------------
class TestClockFaults:
    def test_local_global_inverse_under_drift(self):
        node = build_system().cluster.nodes[0]
        node.jump_clock(123.4)
        node.set_clock_drift(5e-5, 1000.0)
        for t in (1000.0, 5_000.0, 1e6, 3.7e7):
            assert node.global_time(node.local_time(t)) == pytest.approx(t, abs=1e-6)

    def test_jump_clock_shifts_local_time(self):
        node = build_system().cluster.nodes[0]
        before = node.local_time(500.0)
        node.jump_clock(42.0)
        assert node.local_time(500.0) == pytest.approx(before + 42.0)

    def test_timesync_loss_degrades_daemons_to_free_running(self):
        faults = FaultConfig(
            enabled=True,
            timesync_loss_at_us=ms(300),
            clock_jump_us=ms(50),
            clock_drift_rate=1e-4,
            watchdog_interval_us=ms(100),
        )
        cos = CoschedConfig(enabled=True, period_us=ms(200), duty_cycle=0.9, sync_clock=True)
        sysm = build_system(
            faults=faults, cosched=cos, kernel=KernelConfig.prototype(big_tick=2)
        )
        compute_job(sysm, ms(700), n_ranks=8)
        assert sysm.cluster.switch.failed
        jc = sysm.coscheds[0]
        assert all(nc.free_running for nc in jc.node_coscheds.values())
        kinds = [ev.kind for ev in sysm.injector.events]
        assert kinds.count("timesync_lost") == 1
        assert kinds.count("timesync_degraded") == len(jc.node_coscheds)
        assert sysm.injector.monitor.checks > 0


# ----------------------------------------------------------------------
# Scheduler kill primitive
# ----------------------------------------------------------------------
class TestSchedulerKill:
    def test_kill_running_thread_stops_progress(self, harness):
        t = harness.spawn(harness.worker("a", [10.0] * 20), name="victim")
        harness.run(55.0)
        done_before = len(harness.times("a"))
        assert done_before == 5
        harness.sched.kill(t)
        assert t.state is ThreadState.FINISHED
        harness.run(500.0)
        assert len(harness.times("a")) == done_before

    def test_kill_ready_thread_removes_from_queue(self, harness):
        a = harness.spawn(harness.worker("a", [50.0]), name="a", cpu=0)
        b = harness.spawn(harness.worker("b", [50.0]), name="b", cpu=0)
        harness.run(10.0)  # a running, b queued
        harness.sched.kill(b)
        harness.run(500.0)
        assert harness.times("a") and not harness.times("b")
        assert a.state is ThreadState.FINISHED and b.state is ThreadState.FINISHED

    def test_kill_finished_thread_is_noop(self, harness):
        t = harness.spawn(harness.worker("a", [10.0]), name="a")
        harness.run(100.0)
        assert t.state is ThreadState.FINISHED
        harness.sched.kill(t)
        assert t.state is ThreadState.FINISHED


# ----------------------------------------------------------------------
# Co-scheduler watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    COS = dict(enabled=True, period_us=ms(200), duty_cycle=0.9, sync_clock=True)

    def _system(self, faults):
        return build_system(
            faults=faults,
            cosched=CoschedConfig(**self.COS),
            kernel=KernelConfig.prototype(big_tick=2),
        )

    def test_dead_daemon_is_restarted_and_tasks_reregistered(self):
        faults = FaultConfig(
            enabled=True,
            cosched_faults=(CoschedFaultSpec(node=0, at_us=ms(300), kind="die"),),
            watchdog_interval_us=ms(100),
        )
        sysm = self._system(faults)

        def body(rank, api):
            yield from api.compute(ms(900))

        job = sysm.launch(8, 4, body)
        jc = sysm.coscheds[0]
        old_nc = jc.node_coscheds[0]
        job.run(horizon_us=s(60))
        assert jc.restarts >= 1
        assert jc.node_coscheds[0] is not old_nc
        kinds = [ev.kind for ev in sysm.injector.events]
        assert "cosched_died" in kinds and "cosched_restarted" in kinds
        assert sum(wd.restarts for wd in sysm.injector.watchdogs) == jc.restarts
        # The replacement re-learned every task over the control pipe.
        nc = jc.node_coscheds[0]
        assert all(nc.knows(t) for t in jc.node_tasks(0))

    def test_hung_daemon_detected_by_heartbeat_staleness(self):
        faults = FaultConfig(
            enabled=True,
            cosched_faults=(
                CoschedFaultSpec(node=0, at_us=ms(300), kind="hang", duration_us=ms(700)),
            ),
            watchdog_interval_us=ms(100),
            watchdog_staleness_periods=2.0,  # stale after 400ms of silence
        )
        sysm = self._system(faults)
        compute_job(sysm, ms(1400), n_ranks=8)
        restarted = [
            ev for ev in sysm.injector.events if ev.kind == "cosched_restarted"
        ]
        assert restarted and restarted[0].detail == "hung"
        assert sysm.coscheds[0].restarts >= 1

    def test_restart_of_hung_daemon_kills_the_wedged_thread(self):
        """Edge case: restart while the daemon is *hung*, not dead.  The
        wedged thread is still alive (sleeping past its deadline), so the
        watchdog must kill it before installing the replacement — and the
        replacement must re-learn every registered task."""
        faults = FaultConfig(
            enabled=True,
            cosched_faults=(
                # Hang outlives the whole run: the old daemon thread can
                # only reach FINISHED via the watchdog's kill.
                CoschedFaultSpec(node=0, at_us=ms(300), kind="hang", duration_us=s(30)),
            ),
            watchdog_interval_us=ms(100),
            watchdog_staleness_periods=2.0,
        )
        sysm = self._system(faults)

        def body(rank, api):
            yield from api.compute(ms(1400))

        job = sysm.launch(8, 4, body)
        jc = sysm.coscheds[0]
        old_nc = jc.node_coscheds[0]
        job.run(horizon_us=s(60))

        assert jc.restarts >= 1
        assert jc.node_coscheds[0] is not old_nc
        # Killed while wedged-alive — it never exited on its own.
        assert old_nc.thread.state is ThreadState.FINISHED
        kinds = {ev.kind for ev in sysm.injector.events}
        assert "cosched_died" not in kinds  # hung, not dead
        details = [
            ev.detail for ev in sysm.injector.events
            if ev.kind == "cosched_restarted"
        ]
        assert details and all(d == "hung" for d in details)
        nc = jc.node_coscheds[0]
        assert all(nc.knows(t) for t in jc.node_tasks(0))

    def test_lossy_pipe_registrations_recovered_by_audit(self):
        faults = FaultConfig(
            enabled=True,
            pipe_loss_prob=0.85,
            watchdog_interval_us=ms(50),
        )
        sysm = self._system(faults)
        compute_job(sysm, ms(1500), n_ranks=8)
        inj = sysm.injector
        assert inj.pipe_losses > 0
        assert sum(wd.reregistrations for wd in inj.watchdogs) > 0
        jc = sysm.coscheds[0]
        for node_id, nc in jc.node_coscheds.items():
            assert all(nc.knows(t) for t in jc.node_tasks(node_id))


# ----------------------------------------------------------------------
# Invariants: zero overhead when disabled, determinism when enabled
# ----------------------------------------------------------------------
class TestInvariants:
    NOISE_SCALE = 30.0

    def _cfg(self, faults, seed=11):
        return ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=4),
            kernel=KernelConfig.prototype(big_tick=2),
            noise=scale_noise(standard_noise(include_cron=False), self.NOISE_SCALE),
            mpi=MpiConfig(progress_threads_enabled=False),
            cosched=CoschedConfig(
                enabled=True, period_us=ms(10), duty_cycle=0.9, sync_clock=True
            ),
            faults=faults,
            seed=seed,
        )

    def _run(self, faults, seed=11):
        trace = TraceRecorder()
        sysm = System(self._cfg(faults, seed), trace=trace)
        res = run_aggregate_trace(
            sysm, 8, 4, AggregateTraceConfig(calls_per_loop=80, compute_between_us=150.0)
        )
        return res, trace, sysm

    FAULTY = dict(
        msg_drop_prob=0.05,
        msg_dup_prob=0.05,
        msg_delay_prob=0.05,
        msg_delay_us=300.0,
        pipe_loss_prob=0.3,
        timesync_loss_at_us=ms(6),
        clock_jump_us=ms(5),
        clock_drift_rate=1e-5,
        cosched_faults=(CoschedFaultSpec(node=1, at_us=ms(8), kind="die"),),
        retransmit_timeout_us=ms(1),
        retransmit_max_timeout_us=ms(8),
        watchdog_interval_us=ms(5),
    )

    def test_disabled_faults_are_bit_identical_to_baseline(self):
        """The zero-overhead invariant: a FaultConfig full of scary
        parameters but with the master switch off changes nothing."""
        base, base_trace, _ = self._run(FaultConfig())
        aware, aware_trace, sysm = self._run(FaultConfig(enabled=False, **self.FAULTY))
        assert sysm.injector is None
        assert np.array_equal(base.durations_us, aware.durations_us)
        assert normalized_intervals(base_trace) == normalized_intervals(aware_trace)

    def test_fault_runs_are_deterministic(self):
        """Same seed + same fault config -> byte-identical trace streams,
        durations, and fault event logs."""
        fc = FaultConfig(enabled=True, **self.FAULTY)
        a, ta, sa = self._run(fc)
        b, tb, sb = self._run(fc)
        assert np.array_equal(a.durations_us, b.durations_us)
        assert normalized_intervals(ta) == normalized_intervals(tb)
        assert sa.injector.events == sb.injector.events
        assert ta.faults == tb.faults and len(ta.faults) > 0
        c, _, _ = self._run(fc, seed=12)
        assert not np.array_equal(a.durations_us, c.durations_us)


# ----------------------------------------------------------------------
# Trace attribution helpers
# ----------------------------------------------------------------------
class TestAttribution:
    def _trace(self):
        tr = TraceRecorder()
        tr.record_fault("node_crash", 0, 50.0)
        tr.record_fault("timesync_lost", -1, 500.0)
        tr.record_fault("node_slowdown", 3, 250.0)
        return tr

    def test_windows_pick_up_their_faults(self):
        hits = attribute_faults(
            self._trace(), [(0.0, 100.0), (200.0, 300.0), (400.0, 600.0)], node=0
        )
        by_index = {idx: [ev.kind for ev in evs] for idx, _, evs in hits}
        assert by_index[0] == ["node_crash"]
        # Cluster-wide events match regardless of the node filter; the
        # node-3 slowdown is filtered out.
        assert by_index[2] == ["timesync_lost"]
        assert 1 not in by_index

    def test_slack_extends_windows_backwards(self):
        tr = TraceRecorder()
        tr.record_fault("node_crash", 0, 95.0)
        assert attribute_faults(tr, [(100.0, 200.0)]) == []
        hits = attribute_faults(tr, [(100.0, 200.0)], slack_us=10.0)
        assert len(hits) == 1 and hits[0][0] == 0

    def test_fault_summary_counts(self):
        assert fault_summary(self._trace()) == {
            "node_crash": 1,
            "timesync_lost": 1,
            "node_slowdown": 1,
        }


# ----------------------------------------------------------------------
# E8 experiment smoke (full-scale physics lives in benchmarks/)
# ----------------------------------------------------------------------
class TestResilienceExperiment:
    def test_small_scale_smoke(self):
        from repro.experiments.resilience import format_resilience, run_resilience

        res = run_resilience(n_ranks=8, tpn=4, calls=400, time_compression=100.0)
        for v in (res.healthy_us, res.degraded_us, res.uncoordinated_us,
                  res.drop_us, res.death_us):
            assert v > 0
        # The lossy run completed (returning at all is the no-deadlock
        # criterion) and recovered every drop without the forced path.
        assert res.drop_retransmits >= res.drop_net_drops
        assert res.degradation_events >= 1
        out = format_resilience(res)
        assert "resilience" in out and "watchdog" in out
