"""Fine-grain region hints (paper §7 future work)."""

import pytest

from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    PRIO_NORMAL,
)
from repro.cosched.coscheduler import JobCoscheduler
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import ms, s


def build(fine_grain_only=True, body=None, seed=0):
    cos = CoschedConfig(
        enabled=True,
        period_us=ms(100),
        duty_cycle=0.8,
        favored_priority=30,
        unfavored_priority=100,
        fine_grain_only=fine_grain_only,
    )
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=1, cpus_per_node=4),
        kernel=KernelConfig.prototype(big_tick=2),
        cosched=cos,
        mpi=MpiConfig(progress_threads_enabled=False),
        seed=seed,
    )
    cluster = Cluster(cfg)

    if body is None:
        def body(rank, api):
            while True:
                yield from api.compute(ms(500))

    job = MpiJob(cluster, cluster.place(4, 4), body, config=cfg.mpi)
    jc = JobCoscheduler(cluster, job, cos)
    return cluster, job, jc


class TestFineGrainHints:
    def test_undeclared_tasks_stay_normal_in_favored_window(self):
        cluster, job, jc = build()
        cluster.sim.run_until(ms(250))  # inside a favored window
        assert jc.node_coscheds[0].window == "favored"
        assert all(t.priority == PRIO_NORMAL for t in job.tasks)

    def test_declared_task_boosted_immediately(self):
        cluster, job, jc = build()
        cluster.sim.run_until(ms(250))
        job.apis[1].fine_grain_begin()
        assert job.tasks[1].priority == 30
        assert job.tasks[0].priority == PRIO_NORMAL
        job.apis[1].fine_grain_end()
        assert job.tasks[1].priority == PRIO_NORMAL

    def test_declared_region_carries_across_windows(self):
        cluster, job, jc = build()
        cluster.sim.run_until(ms(250))
        job.apis[2].fine_grain_begin()
        # Through unfavored (everyone 100) and back to favored (fg -> 30).
        cluster.sim.run_until(ms(450))
        assert jc.node_coscheds[0].window == "favored"
        assert job.tasks[2].priority == 30
        assert job.tasks[0].priority == PRIO_NORMAL

    def test_unfavored_window_overrides_hints(self):
        cluster, job, jc = build()
        cluster.sim.run_until(ms(250))
        job.apis[0].fine_grain_begin()
        # Advance into the unfavored part of a cycle (80-100 of each 100ms).
        while jc.node_coscheds[0].window != "unfavored":
            cluster.sim.run_until(cluster.sim.now + ms(5))
        assert job.tasks[0].priority == 100

    def test_without_flag_hints_are_inert(self):
        cluster, job, jc = build(fine_grain_only=False)
        cluster.sim.run_until(ms(250))
        assert all(t.priority == 30 for t in job.tasks)
        job.apis[0].fine_grain_begin()
        assert job.tasks[0].priority == 30  # already favored; no change

    def test_hints_noop_without_cosched(self):
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=1, cpus_per_node=2),
            mpi=MpiConfig(progress_threads_enabled=False),
        )
        cluster = Cluster(cfg)

        def body(rank, api):
            api.fine_grain_begin()
            yield from api.compute(100.0)
            api.fine_grain_end()

        job = MpiJob(cluster, cluster.place(2, 2), body, config=cfg.mpi)
        job.run(horizon_us=s(1))
        assert job.done
