"""Configuration dataclasses: defaults, validation, derived values."""

import pytest

from repro.config import (
    ClusterConfig,
    CoschedConfig,
    DaemonSpec,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NetworkConfig,
    NoiseConfig,
    PRIO_DAEMON_SYSTEM,
    PRIO_IDLE,
    PRIO_NORMAL,
)
from repro.rng import Constant
from repro.units import ms, s


class TestPriorityBands:
    def test_paper_bands(self):
        """AIX numerics: lower = more favored; the paper's observed values."""
        assert PRIO_DAEMON_SYSTEM == 56 < PRIO_NORMAL == 60 < PRIO_IDLE == 127


class TestMachineConfig:
    def test_total_cpus(self):
        assert MachineConfig(n_nodes=59, cpus_per_node=16).total_cpus == 944

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=0)
        with pytest.raises(ValueError):
            MachineConfig(cpus_per_node=0)

    def test_paper_machines_expressible(self):
        white = MachineConfig(n_nodes=512, cpus_per_node=16)   # ASCI White
        frost = MachineConfig(n_nodes=68, cpus_per_node=16)    # Frost
        blue_oak = MachineConfig(n_nodes=120, cpus_per_node=16)  # Blue Oak
        assert blue_oak.total_cpus == 1920
        assert white.total_cpus == 8192
        assert frost.total_cpus == 1088


class TestCoschedConfig:
    def test_paper_settings_are_defaults(self):
        c = CoschedConfig()
        assert c.period_us == s(5)
        assert c.duty_cycle == pytest.approx(0.90)
        assert c.favored_priority == 30
        assert c.unfavored_priority == 100

    def test_window_lengths(self):
        c = CoschedConfig(period_us=s(10), duty_cycle=0.95)
        assert c.favored_window_us == pytest.approx(s(9.5))
        assert c.unfavored_window_us == pytest.approx(s(0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            CoschedConfig(duty_cycle=0.0)
        with pytest.raises(ValueError):
            CoschedConfig(duty_cycle=1.5)
        with pytest.raises(ValueError):
            CoschedConfig(period_us=0.0)
        with pytest.raises(ValueError):
            CoschedConfig(favored_priority=-1)
        with pytest.raises(ValueError):
            CoschedConfig(unfavored_priority=300)


class TestNetworkConfig:
    def test_defaults_give_paper_scale_allreduce(self):
        """~10 recursive-doubling rounds at ~35 µs each ≈ the paper's
        350 µs model prediction for 944 tasks."""
        net = NetworkConfig()
        mpi = MpiConfig()
        per_round = 2 * net.overhead_us + net.latency_us + mpi.reduce_op_us
        assert 250.0 <= 10 * per_round <= 450.0


class TestMpiConfig:
    def test_long_polling_factory(self):
        assert MpiConfig.with_long_polling().progress_interval_us == s(400)

    def test_validation(self):
        with pytest.raises(ValueError):
            MpiConfig(algorithm="token-ring")
        with pytest.raises(ValueError):
            MpiConfig(wait_mode="pray")

    def test_paper_progress_interval_default(self):
        assert MpiConfig().progress_interval_us == ms(400)


class TestDaemonSpecDefaults:
    def test_hardware_flag_default_off(self):
        d = DaemonSpec(name="x", period_us=ms(1), service=Constant(1.0))
        assert not d.hardware
        assert d.deferrable

    def test_phase_pin_optional(self):
        d = DaemonSpec(name="x", period_us=ms(1), service=Constant(1.0), phase_us=123.0)
        assert d.phase_us == 123.0


class TestClusterConfig:
    def test_replace_shallow(self):
        a = ClusterConfig()
        b = a.replace(seed=9)
        assert a.seed == 0 and b.seed == 9
        assert b.machine is a.machine

    def test_default_composition(self):
        c = ClusterConfig()
        assert isinstance(c.kernel, KernelConfig)
        assert isinstance(c.noise, NoiseConfig)
        assert not c.cosched.enabled


class TestMachinePresets:
    def test_paper_platforms(self):
        from repro.machines import ASCI_WHITE, BLUE_OAK, FROST, machine_preset

        assert ASCI_WHITE.total_cpus == 8192
        assert FROST.total_cpus == 1088
        assert BLUE_OAK.total_cpus == 1920
        assert machine_preset("Blue Oak") is BLUE_OAK
        assert machine_preset("asci_white") is ASCI_WHITE

    def test_unknown_preset(self):
        from repro.machines import machine_preset

        with pytest.raises(KeyError, match="presets"):
            machine_preset("bluegene")


class TestCoschedInversionGuard:
    def test_inverted_priorities_rejected(self):
        with pytest.raises(ValueError, match="numerically below"):
            CoschedConfig(enabled=True, favored_priority=100, unfavored_priority=30)

    def test_equal_priorities_rejected(self):
        with pytest.raises(ValueError, match="numerically below"):
            CoschedConfig(enabled=True, favored_priority=50, unfavored_priority=50)

    def test_disabled_config_not_checked(self):
        # A disabled schedule is inert; don't block configs that carry it.
        CoschedConfig(enabled=False, favored_priority=100, unfavored_priority=30)
