"""Store-level chaos: deterministic fault plans, every injected
corruption detected by fsck, repair converging to clean, and the benign
duplicate-writer axis staying silent."""

import pytest

from repro.chaos.harness_faults import (
    STORE_FAULT_MODES,
    inject_interrupted_gc,
    inject_store_fault,
    store_plan_for,
)
from repro.checkpoint.harness import SweepJournal
from repro.experiments.runner import TrialRunner, TrialSpec
from repro.store import ResultStore, spec_fingerprint


def _trial(params):
    return {"value": params["x"] * 3}


def _seed_campaign(tmp_path, n=8):
    """Run a small campaign into a journal + store; return both."""
    store = ResultStore(tmp_path / "store")
    journal = SweepJournal(tmp_path / "results")
    specs = [
        TrialSpec(f"sc-t{i}", "tests.test_store_chaos:_trial", {"x": i})
        for i in range(n)
    ]
    TrialRunner(journal=journal, store=store).run(specs)
    return store, journal, specs


class TestStorePlans:
    def test_plan_is_pure_function_of_seed_and_fingerprint(self):
        fp = "a" * 64
        assert store_plan_for(7, fp) == store_plan_for(7, fp)
        plans = {store_plan_for(7, f"{i:064x}").mode for i in range(64)}
        # Over enough fingerprints every axis (and "leave alone") shows up.
        assert plans == {None, *STORE_FAULT_MODES}

    def test_unknown_mode_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="unknown store fault mode"):
            inject_store_fault(store, "a" * 64, "arson")

    def test_injection_on_missing_record_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        assert inject_store_fault(store, "a" * 64, "torn") is False


class TestChaosDetectionAndRepair:
    def test_fsck_detects_every_injected_corruption(self, tmp_path):
        store, journal, specs = _seed_campaign(tmp_path)
        damaged = []
        for fp in list(store.fingerprints()):
            plan = store_plan_for(3, fp)
            if plan.mode is None:
                continue
            inject_store_fault(store, fp, plan.mode)
            if plan.mode != "dup":
                damaged.append(fp)
        if not damaged:  # force at least one, like the CLI drill does
            fp = next(iter(store.fingerprints()))
            inject_store_fault(store, fp, "torn")
            damaged.append(fp)
        report = store.fsck()
        found = {f.fingerprint for f in report.findings if f.fingerprint}
        assert found == set(damaged)  # 100% detection, zero false alarms

    def test_dup_axis_is_silent(self, tmp_path):
        store, _, _ = _seed_campaign(tmp_path)
        for fp in list(store.fingerprints()):
            inject_store_fault(store, fp, "dup")
        assert store.fsck().clean

    def test_repair_returns_store_to_clean_and_cache_stays_warm(self, tmp_path):
        store, journal, specs = _seed_campaign(tmp_path)
        originals = {
            fp: store.object_path(fp).read_bytes() for fp in store.fingerprints()
        }
        for fp in list(store.fingerprints()):
            plan = store_plan_for(3, fp)
            if plan.mode is not None:
                inject_store_fault(store, fp, plan.mode)
        bait = inject_interrupted_gc(store, 3)

        repaired = ResultStore(tmp_path / "store")
        report = repaired.fsck(repair=True, journal_dirs=[journal.dir])
        assert report.resolved
        assert repaired.fsck().clean
        # Every real record is back, byte-identical; the GC bait is gone.
        for fp, data in originals.items():
            assert repaired.object_path(fp).read_bytes() == data
        assert not repaired.object_path(bait).exists()

        # The warm rerun still serves everything from the store.
        warm = ResultStore(tmp_path / "store")
        outs = TrialRunner(store=warm).run(specs)
        assert all(o.cached for o in outs)
        assert warm.misses == 0 and warm.hits == len(specs)

    def test_interrupted_gc_injection_spares_real_records(self, tmp_path):
        store, _, specs = _seed_campaign(tmp_path)
        real = set(store.fingerprints())
        bait = inject_interrupted_gc(store, 11)
        assert bait not in real
        # Completing the sweep (what gc/fsck --repair do) removes only bait.
        assert store.finish_gc() == 1
        assert set(store.fingerprints()) == real

    def test_chaos_cli_drill_end_to_end(self, tmp_path, capsys):
        from repro.store.cli import main

        store, journal, specs = _seed_campaign(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["chaos", "--store", store_dir, "--chaos-seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "store-chaos: corrupted=" in out and "gc_crash=1" in out
        assert main(["fsck", "--store", store_dir]) == 1
        assert main([
            "fsck", "--store", store_dir,
            "--repair", "--journal", str(tmp_path / "results"),
        ]) == 0
        assert main(["fsck", "--store", store_dir]) == 0
