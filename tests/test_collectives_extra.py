"""Extended collectives: reduce_scatter, alltoall, scan, hardware allreduce."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, MachineConfig, MpiConfig
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import s


def run_collective(n_ranks, body_factory, tpn=None, seed=0, mpi=None):
    tpn = tpn if tpn is not None else min(4, n_ranks)
    n_nodes = -(-n_ranks // tpn)
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=tpn),
        mpi=mpi if mpi is not None else MpiConfig(progress_threads_enabled=False),
        seed=seed,
    )
    cluster = Cluster(cfg)
    job = MpiJob(cluster, cluster.place(n_ranks, tpn), body_factory, config=cfg.mpi)
    job.run(horizon_us=s(60))
    return job


class TestReduceScatter:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_each_rank_gets_its_block_sum(self, n):
        results = {}

        def body(rank, api):
            # Block j contributed by rank i is i*10 + j.
            values = [rank * 10 + j for j in range(n)]
            results[rank] = yield from api.reduce_scatter(values)

        run_collective(n, body)
        for r in range(n):
            expected = sum(i * 10 + r for i in range(n))
            assert results[r] == expected

    def test_wrong_block_count_raises(self):
        def body(rank, api):
            yield from api.reduce_scatter([1, 2, 3])  # size is 2

        with pytest.raises(ValueError):
            run_collective(2, body)

    def test_max_op(self):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.reduce_scatter(
                [rank * 10 + j for j in range(4)], op=max
            )

        run_collective(4, body)
        assert results == {j: 30 + j for j in range(4)}


class TestAlltoall:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8])
    def test_full_exchange(self, n):
        results = {}

        def body(rank, api):
            values = [f"{rank}->{dst}" for dst in range(n)]
            results[rank] = yield from api.alltoall(values)

        run_collective(n, body)
        for dst in range(n):
            assert results[dst] == [f"{src}->{dst}" for src in range(n)]

    def test_wrong_count_raises(self):
        def body(rank, api):
            yield from api.alltoall([1])

        with pytest.raises(ValueError):
            run_collective(2, body)


class TestScan:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 9, 16])
    def test_inclusive_prefix_sums(self, n):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.scan(rank + 1)

        run_collective(n, body)
        for r in range(n):
            assert results[r] == sum(range(1, r + 2))

    def test_noncommutative_order(self):
        """String concatenation exposes ordering mistakes immediately."""
        results = {}

        def body(rank, api):
            results[rank] = yield from api.scan(str(rank), op=operator.add)

        run_collective(5, body)
        assert results[4] == "01234"

    def test_single_rank(self):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.scan(7.0)

        run_collective(1, body)
        assert results[0] == 7.0


class TestHardwareAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 13])
    def test_correct_sum(self, n):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(float(rank))

        run_collective(
            n, body, mpi=MpiConfig(progress_threads_enabled=False, algorithm="hardware")
        )
        assert set(results.values()) == {float(sum(range(n)))}

    def test_consecutive_ops_do_not_cross(self):
        results = {}

        def body(rank, api):
            a = yield from api.allreduce(1.0)
            b = yield from api.allreduce(10.0)
            results[rank] = (a, b)

        run_collective(
            6, body, mpi=MpiConfig(progress_threads_enabled=False, algorithm="hardware")
        )
        assert set(results.values()) == {(6.0, 60.0)}

    def test_faster_than_software_tree_at_size(self):
        times = {}

        def make(key):
            def body(rank, api):
                t0 = api.now
                for _ in range(10):
                    yield from api.allreduce(1.0)
                if rank == 0:
                    times[key] = api.now - t0

            return body

        run_collective(
            16, make("hw"), tpn=8,
            mpi=MpiConfig(progress_threads_enabled=False, algorithm="hardware"),
        )
        run_collective(
            16, make("sw"), tpn=8,
            mpi=MpiConfig(progress_threads_enabled=False),
        )
        assert times["hw"] < times["sw"]

    def test_analytic_model_hardware_branch(self):
        from repro.analytic.model import AllreduceSeriesModel
        from repro.experiments.common import VANILLA16, make_config

        base = make_config(VANILLA16, 256, seed=1)
        hw = base.replace(mpi=MpiConfig(algorithm="hardware"))
        sw_mean = AllreduceSeriesModel(base, 256, 16, seed=2).run_series(100, 200.0).mean_us
        hw_mean = AllreduceSeriesModel(hw, 256, 16, seed=2).run_series(100, 200.0).mean_us
        assert hw_mean < sw_mean
