"""Empirical overhead accounting: measured daemon consumption must match
both the configured budget and the paper's published envelope."""

import pytest

from repro.config import ClusterConfig, MachineConfig, NoiseConfig
from repro.daemons.catalog import standard_noise
from repro.daemons.engine import install_noise
from repro.machine import Cluster
from repro.trace.analysis import overhead_report
from repro.trace.recorder import TraceRecorder
from repro.units import ms, s


def run_quiet_node(noise, duration_us, seed=3):
    trace = TraceRecorder(enabled=True, nodes=[0])
    cluster = Cluster(
        ClusterConfig(machine=MachineConfig(n_nodes=1, cpus_per_node=16), seed=seed),
        trace=trace,
    )
    install_noise(cluster, noise)
    cluster.run_for(duration_us)
    return trace


class TestOverheadReport:
    def test_measured_total_matches_configured_budget(self):
        """A 60 s observation of an idle node: the trace-measured daemon
        fraction agrees with the catalog's analytic budget."""
        noise = standard_noise(include_cron=False)
        duration = s(60)
        trace = run_quiet_node(noise, duration)
        rep = overhead_report(trace, node=0, t0=0.0, t1=duration, n_cpus=16)
        configured = noise.total_cpu_fraction(16)
        assert rep.per_cpu_fraction == pytest.approx(configured, rel=0.5)

    def test_measured_inside_paper_envelope(self):
        """Paper: 0.2%–1.1% of each CPU (daemons + ticks; ticks are free
        on an idle node, so compare against the daemon share)."""
        noise = standard_noise(include_cron=False)
        trace = run_quiet_node(noise, s(60))
        rep = overhead_report(trace, node=0, t0=0.0, t1=s(60), n_cpus=16)
        tick_share = 18.0 / ms(10)  # per-CPU tick cost on a busy node
        assert 0.002 <= rep.per_cpu_fraction + tick_share <= 0.011

    def test_per_daemon_fractions(self):
        noise = standard_noise(include_cron=False)
        trace = run_quiet_node(noise, s(60))
        rep = overhead_report(trace, node=0, t0=0.0, t1=s(60), n_cpus=16)
        # Fast periodic daemons must appear with roughly their share.
        mld_cfg = noise.get("mld").mean_service_us() / noise.get("mld").period_us
        assert rep.daemon_fraction("mld") == pytest.approx(mld_cfg, rel=0.5)
        assert rep.top(3)  # something to report

    def test_interrupt_instances_folded(self):
        noise = standard_noise(include_cron=False)
        trace = run_quiet_node(noise, s(10))
        rep = overhead_report(trace, node=0, t0=0.0, t1=s(10), n_cpus=16)
        names = set(rep.by_daemon)
        assert "caddpin" in names
        assert not any(n.startswith("caddpin.c") for n in names)

    def test_empty_trace(self):
        rep = overhead_report(TraceRecorder(), node=0, t0=0.0, t1=s(1), n_cpus=16)
        assert rep.per_cpu_fraction == 0.0
        assert rep.total_overhead_us == 0.0
