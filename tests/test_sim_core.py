"""DES engine: ordering, cancellation, determinism."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.core import EventPriority, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run(self):
        sim = Simulator()
        hits = []
        sim.schedule(10.0, hits.append, "a")
        sim.schedule(5.0, hits.append, "b")
        sim.run()
        assert hits == ["b", "a"]
        assert sim.now == 10.0

    def test_schedule_at_absolute(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(7.0, hits.append, 1)
        sim.run()
        assert sim.now == 7.0 and hits == [1]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        hits = []
        sim.schedule(0.0, hits.append, 1)
        sim.run()
        assert hits == [1]

    def test_callback_can_schedule_more(self):
        sim = Simulator()
        hits = []

        def chain(k):
            hits.append(k)
            if k < 3:
                sim.schedule(1.0, chain, k + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert hits == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestOrdering:
    def test_fifo_among_exact_ties(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(5.0, hits.append, i)
        sim.run()
        assert hits == list(range(10))

    def test_priority_orders_same_instant(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, hits.append, "normal", priority=EventPriority.NORMAL)
        sim.schedule(5.0, hits.append, "interrupt", priority=EventPriority.INTERRUPT)
        sim.schedule(5.0, hits.append, "kernel", priority=EventPriority.KERNEL)
        sim.schedule(5.0, hits.append, "message", priority=EventPriority.MESSAGE)
        sim.run()
        assert hits == ["interrupt", "message", "kernel", "normal"]

    def test_interrupt_tier_is_lowest_value(self):
        assert EventPriority.INTERRUPT < EventPriority.MESSAGE < EventPriority.KERNEL
        assert EventPriority.KERNEL < EventPriority.NORMAL < EventPriority.LATE


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule(5.0, hits.append, 1)
        ev.cancel()
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(5.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert not ev.active

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule(1.0, hits.append, 1)
        sim.run()
        ev.cancel()
        assert hits == [1]

    def test_active_flag(self):
        sim = Simulator()
        ev = sim.schedule(5.0, lambda: None)
        assert ev.active
        ev.cancel()
        assert not ev.active

    def test_pending_counts_only_live(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        e1.cancel()
        assert sim.pending == 1


class TestRunUntil:
    def test_runs_only_due_events(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, hits.append, "early")
        sim.schedule(15.0, hits.append, "late")
        sim.run_until(10.0)
        assert hits == ["early"]
        assert sim.now == 10.0

    def test_event_exactly_at_bound_runs(self):
        sim = Simulator()
        hits = []
        sim.schedule(10.0, hits.append, 1)
        sim.run_until(10.0)
        assert hits == [1]

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=100)

    def test_returns_processed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run_until(10.0) == 5

    def test_max_events_exact_cap_is_not_exceeded(self):
        """Regression: exactly max_events due events must run cleanly
        (the guard used to fire one event early)."""
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run_until(10.0, max_events=5) == 5

    def test_max_events_one_below_due_count_raises(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        with pytest.raises(SimulationError):
            sim.run_until(10.0, max_events=4)

    def test_run_exact_cap_is_not_exceeded(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=3) == 3

    def test_run_cap_below_pending_raises(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=2)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestStep:
    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_processes_one(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, hits.append, 1)
        sim.schedule(2.0, hits.append, 2)
        assert sim.step() is True
        assert hits == [1]


def _reference_run_until(sim, time, max_events=None):
    """The pre-fusion ``run_until`` loop: peek_time() then step(), two heap
    walks per event.  Kept here as the semantic reference for the fused
    ``_pop_due`` implementation."""
    if time < sim.now:
        raise SimulationError(f"run_until({time!r}) is in the past")
    processed = 0
    while True:
        nxt = sim.peek_time()
        if nxt is None or nxt > time:
            break
        if max_events is not None and processed >= max_events:
            raise SimulationError(f"exceeded max_events={max_events}")
        sim.step()
        processed += 1
    sim.now = time
    return processed


def _drive(sim, run_until, bounds, *, cancel_every=None, reschedule=True):
    """One deterministic workload: self-rescheduling chains with periodic
    cancellations, run in segments.  Returns the firing log."""
    fired = []
    handles = {}

    def tick(name, t, k):
        fired.append((name, t, k))
        if reschedule and k < 6:
            handles[name] = sim.schedule(
                1.5 + 0.25 * k, tick, name, t + 1.5 + 0.25 * k, k + 1,
                priority=k % 5,
            )

    for i, name in enumerate("abcde"):
        handles[name] = sim.schedule(float(i) * 0.7, tick, name, float(i) * 0.7, 0)
    for j, bound in enumerate(bounds):
        if cancel_every and j % cancel_every == 1:
            victim = "abcde"[j % 5]
            if handles.get(victim) is not None and handles[victim].active:
                handles[victim].cancel()
        fired.append(("segment", bound, run_until(sim, bound)))
    return fired


class TestFusedPopMatchesReference:
    """Regression guard for the fused single-heap-walk ``run_until``:
    identical event order, ``now`` and ``events_processed`` to the old
    peek_time()+step() loop, on workloads with cancellation and
    re-scheduling."""

    BOUNDS = [1.0, 2.0, 4.5, 4.5, 9.0, 30.0]

    def _compare(self, **drive_kw):
        fused_sim, ref_sim = Simulator(), Simulator()
        fused = _drive(fused_sim, lambda s, t: s.run_until(t), self.BOUNDS, **drive_kw)
        ref = _drive(ref_sim, _reference_run_until, self.BOUNDS, **drive_kw)
        assert fused == ref  # firing order AND per-segment processed counts
        assert fused_sim.now == ref_sim.now
        assert fused_sim.events_processed == ref_sim.events_processed
        assert fused_sim.pending == ref_sim.pending

    def test_identical_on_rescheduling_workload(self):
        self._compare()

    def test_identical_with_cancellations(self):
        self._compare(cancel_every=2)

    def test_identical_without_rescheduling(self):
        self._compare(reschedule=False, cancel_every=3)

    def test_pop_due_skips_dead_entries_without_firing(self):
        sim = Simulator()
        live = []
        e1 = sim.schedule(1.0, live.append, 1)
        sim.schedule(2.0, live.append, 2)
        e1.cancel()
        assert sim.run_until(1.5) == 0  # only the dead head was due
        assert sim.run_until(2.5) == 1
        assert live == [2]

    def test_pop_due_leaves_future_head_in_place(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run_until(5.0) == 0
        assert sim.pending == 1
        assert sim.peek_time() == 10.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.integers(min_value=0, max_value=4),
                st.booleans(),  # cancel this event before running?
            ),
            min_size=1,
            max_size=40,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
            min_size=1,
            max_size=6,
        ),
    )
    def test_property_fused_equals_reference(self, specs, raw_bounds):
        bounds = sorted(raw_bounds)
        logs = []
        sims = []
        for run_until in (lambda s, t: s.run_until(t), _reference_run_until):
            sim = Simulator()
            fired = []
            handles = [
                sim.schedule_at(t, lambda i=i: fired.append(i), priority=p)
                for i, (t, p, _c) in enumerate(specs)
            ]
            for h, (_t, _p, c) in zip(handles, specs):
                if c:
                    h.cancel()
            for b in bounds:
                fired.append(("seg", run_until(sim, b)))
            logs.append(fired)
            sims.append(sim)
        assert logs[0] == logs[1]
        assert sims[0].now == sims[1].now
        assert sims[0].events_processed == sims[1].events_processed


class TestPropertyOrdering:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_events_fire_in_time_then_priority_then_fifo_order(self, specs):
        sim = Simulator()
        fired = []
        for idx, (t, prio) in enumerate(specs):
            sim.schedule_at(t, lambda i=idx: fired.append(i), priority=prio)
        sim.run()
        keys = [(specs[i][0], specs[i][1], i) for i in fired]
        assert keys == sorted(keys)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_clock_is_monotone(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.schedule_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


# ----------------------------------------------------------------------
# Tuple-heap engine regression suite
# ----------------------------------------------------------------------

class _ObjectHeapSimulator:
    """The seed engine, preserved as a semantic twin: ``Event`` objects
    compared via ``__lt__`` directly in the heap, no live counter, no
    compaction.  The production tuple-heap engine must match its firing
    order, clock, and counters exactly on any workload."""

    class _Ev:
        __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

        def __init__(self, time, priority, seq, fn, args):
            self.time, self.priority, self.seq = time, priority, seq
            self.fn, self.args = fn, args
            self.cancelled = False

        @property
        def active(self):
            return not self.cancelled and self.fn is not None

        def cancel(self):
            self.cancelled = True
            self.fn = None
            self.args = ()

        def __lt__(self, other):
            return (self.time, self.priority, self.seq) < (
                other.time, other.priority, other.seq
            )

    def __init__(self):
        import heapq as _hq
        import itertools as _it

        self._hq = _hq
        self.now = 0.0
        self._heap = []
        self._seq = _it.count()
        self.events_processed = 0

    def schedule(self, delay, fn, *args, priority=EventPriority.NORMAL):
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(self, time, fn, *args, priority=EventPriority.NORMAL):
        ev = self._Ev(time, int(priority), next(self._seq), fn, args)
        self._hq.heappush(self._heap, ev)
        return ev

    @property
    def pending(self):
        return sum(1 for ev in self._heap if ev.active)

    def run_until(self, time):
        processed = 0
        heap = self._heap
        while heap:
            head = heap[0]
            if not head.active:
                self._hq.heappop(heap)
                continue
            if head.time > time:
                break
            ev = self._hq.heappop(heap)
            self.now = ev.time
            fn, args = ev.fn, ev.args
            ev.fn = None
            ev.args = ()
            self.events_processed += 1
            fn(*args)
            processed += 1
        self.now = time
        return processed


def _twin_workload(sim, specs, bounds):
    """Drive *sim* (either engine) with one deterministic workload: initial
    events from *specs*, per-firing rescheduling plus cancellation of the
    previous handle (the dispatcher's cancel-and-reschedule shape)."""
    fired = []
    last = {"h": None}

    def hit(i, t, p, depth):
        fired.append((i, sim.now, depth))
        if last["h"] is not None and last["h"].active:
            last["h"].cancel()
        if depth < 3:
            last["h"] = sim.schedule(
                0.5 + (i % 7) * 0.25, hit, i, t, p, depth + 1, priority=p
            )

    for i, (t, p, cancel) in enumerate(specs):
        h = sim.schedule_at(t, hit, i, t, p, 0, priority=p)
        if cancel:
            h.cancel()
    log = []
    for b in bounds:
        log.append(("segment", b, sim.run_until(b)))
    return fired + log


class TestTupleHeapTwin:
    """The tuple-heap production engine against the object-heap twin:
    identical firing order, events_processed, pending, and clock."""

    def _compare(self, specs, raw_bounds):
        bounds = sorted(raw_bounds)
        tuple_sim, object_sim = Simulator(), _ObjectHeapSimulator()
        tuple_log = _twin_workload(tuple_sim, specs, bounds)
        object_log = _twin_workload(object_sim, specs, bounds)
        assert tuple_log == object_log
        assert tuple_sim.now == object_sim.now
        assert tuple_sim.events_processed == object_sim.events_processed
        assert tuple_sim.pending == object_sim.pending

    def test_twin_on_mixed_workload(self):
        specs = [(float(i % 13) * 0.75, i % 5, i % 4 == 3) for i in range(40)]
        self._compare(specs, [2.0, 5.0, 9.0, 40.0])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.integers(min_value=0, max_value=4),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
    )
    def test_property_twin_equivalence(self, specs, raw_bounds):
        self._compare(specs, raw_bounds)


class TestCompaction:
    def _cancel_heavy(self, sim, rounds):
        """Every firing schedules a far-future decoy and cancels the
        previous one — the preemption shape that used to accrete dead
        entries without bound.  Returns (firing log, peak heap length)."""
        fired = []
        state = {"decoy": None, "peak": 0, "k": 0}

        def nop():
            raise AssertionError("decoy fired")

        def tick():
            state["k"] += 1
            fired.append(state["k"])
            if state["decoy"] is not None:
                state["decoy"].cancel()
            state["peak"] = max(state["peak"], len(sim._heap))
            if state["k"] < rounds:
                state["decoy"] = sim.schedule(1e9, nop)
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run_until(float(rounds) + 1.0)
        return fired, state["peak"]

    def test_cancel_heavy_heap_stays_bounded(self):
        from repro.sim.core import _COMPACT_MIN_ENTRIES

        sim = Simulator()
        fired, peak = self._cancel_heavy(sim, rounds=5_000)
        assert fired == list(range(1, 5_001))
        # Live events never exceed ~2 here; without compaction the heap
        # would end ~5000 entries deep.  Compaction caps dead weight at
        # the live count or the compaction floor, whichever is larger.
        assert peak <= 2 * _COMPACT_MIN_ENTRIES
        assert len(sim._heap) <= _COMPACT_MIN_ENTRIES
        assert sim.pending == 0

    def test_cancel_heavy_matches_object_heap_twin(self):
        tuple_sim, object_sim = Simulator(), _ObjectHeapSimulator()
        tuple_fired, _ = self._cancel_heavy(tuple_sim, rounds=500)
        object_fired, object_peak = self._cancel_heavy(object_sim, rounds=500)
        assert tuple_fired == object_fired
        assert tuple_sim.events_processed == object_sim.events_processed
        assert object_peak >= 450  # the twin really does accrete dead weight

    def test_compaction_preserves_firing_order(self):
        """Force a compaction mid-stream and check the survivors still
        fire in exact (time, priority, seq) order."""
        sim = Simulator()
        fired = []
        handles = []
        for i in range(300):
            t = float((i * 37) % 100) + 1.0
            handles.append(
                sim.schedule_at(t, lambda i=i, t=t: fired.append((t, i)), priority=i % 5)
            )
        # Cancel enough to cross the dead > live threshold (triggers
        # _compact inside cancel()).
        survivors = []
        for i, h in enumerate(handles):
            if i % 5 == 0:
                survivors.append(i)
            else:
                h.cancel()
        assert len(sim._heap) < 300  # compaction actually ran
        sim.run()
        expected = sorted(
            ((float((i * 37) % 100) + 1.0), i % 5, i) for i in survivors
        )
        assert [i for _t, _p, i in expected] == [i for _t, i in fired]

    def test_explicit_compact_is_idempotent_and_orderless(self):
        sim = Simulator()
        hits = []
        for i in range(10):
            sim.schedule(float(10 - i), hits.append, i)
        sim._compact()
        sim._compact()
        sim.run()
        assert hits == list(range(9, -1, -1))


class TestPendingCounter:
    """``Simulator.pending`` is a maintained O(1) counter; these pin it to
    the ground truth (a scan of live heap entries) under every transition:
    schedule, fire, cancel, double-cancel, cancel-after-fire, compaction."""

    def _ground_truth(self, sim):
        return sum(1 for entry in sim._heap if not entry[3]._cancelled)

    def test_counter_tracks_schedule_fire_cancel(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10 == self._ground_truth(sim)
        handles[3].cancel()
        handles[3].cancel()  # double-cancel must not double-decrement
        assert sim.pending == 9 == self._ground_truth(sim)
        sim.run_until(5.0)
        assert sim.pending == 5 == self._ground_truth(sim)
        handles[0].cancel()  # cancel-after-fire must not decrement
        assert sim.pending == 5 == self._ground_truth(sim)
        sim.run()
        assert sim.pending == 0 == self._ground_truth(sim)

    def test_counter_matches_active_events(self):
        sim = Simulator()
        handles = [
            sim.schedule(float((i * 13) % 29) + 0.5, lambda: None, priority=i % 5)
            for i in range(200)
        ]
        for i, h in enumerate(handles):
            if i % 3 != 0:
                h.cancel()
        assert sim.pending == len(sim.active_events()) == self._ground_truth(sim)
        sim.run_until(10.0)
        assert sim.pending == len(sim.active_events()) == self._ground_truth(sim)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
    )
    def test_property_counter_equals_scan(self, specs, bound):
        sim = Simulator()
        handles = [sim.schedule_at(t, lambda: None) for t, _ in specs]
        for h, (_, cancel) in zip(handles, specs):
            if cancel:
                h.cancel()
        assert sim.pending == self._ground_truth(sim)
        sim.run_until(bound)
        assert sim.pending == self._ground_truth(sim)
