"""Statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    bootstrap_ci,
    slowdown_profile,
    summarize,
    variability,
)


class TestSummarize:
    def test_basic_profile(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_rows_ordering(self):
        s = summarize([1.0, 2.0])
        names = [n for n, _ in s.rows()]
        assert names == ["min", "p25", "median", "p75", "p90", "p99", "max", "mean"]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
    def test_quantiles_monotone(self, xs):
        s = summarize(xs)
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.p90 <= s.p99 <= s.maximum


class TestBootstrap:
    def test_ci_contains_true_mean_for_clean_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(100.0, 5.0, size=500)
        lo, hi = bootstrap_ci(x, seed=1)
        assert lo < 100.0 < hi
        assert hi - lo < 3.0

    def test_custom_statistic(self):
        lo, hi = bootstrap_ci([1, 2, 3, 4, 100.0], statistic=np.median, seed=2)
        assert lo >= 1.0 and hi <= 100.0

    def test_deterministic_given_seed(self):
        x = [1.0, 5.0, 9.0, 2.0, 8.0]
        assert bootstrap_ci(x, seed=3) == bootstrap_ci(x, seed=3)

    def test_validations(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestVariability:
    def test_uniform_sample_not_heavy_tailed(self):
        v = variability(np.full(200, 100.0))
        assert v.cv == 0.0
        assert v.mean_over_median == pytest.approx(1.0)
        assert not v.is_heavy_tailed

    def test_outlier_sample_heavy_tailed(self):
        x = np.full(200, 100.0)
        x[0] = 50_000.0
        v = variability(x)
        assert v.mean_over_median > 1.5
        assert v.top1pct_share > 0.5
        assert v.is_heavy_tailed

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            variability([])


class TestSlowdownProfile:
    def test_tail_only_treatment(self):
        rng = np.random.default_rng(5)
        base = np.concatenate([rng.normal(100, 2, 975), rng.normal(5000, 100, 25)])
        treated = rng.normal(100, 2, 1000)
        prof = dict(slowdown_profile(base, treated))
        assert prof[0.5] == pytest.approx(1.0, abs=0.1)
        assert prof[0.99] > 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            slowdown_profile([], [1.0])
