"""Property tests on the vectorised model: monotonicities the physics
demands, across random configurations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.model import AllreduceSeriesModel
from repro.config import (
    ClusterConfig,
    DaemonSpec,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.rng import Constant
from repro.units import ms, s


def config(n_ranks, daemon_period_us=None, daemon_service_us=None, seed=0, **kernel_kw):
    daemons = ()
    if daemon_period_us is not None:
        daemons = (
            DaemonSpec(
                name="d",
                period_us=daemon_period_us,
                service=Constant(daemon_service_us),
                priority=56,
            ),
        )
    return ClusterConfig(
        machine=MachineConfig(n_nodes=-(-n_ranks // 16), cpus_per_node=16),
        kernel=KernelConfig(**kernel_kw),
        mpi=MpiConfig.with_long_polling(),
        noise=NoiseConfig(daemons=daemons),
        seed=seed,
    )


class TestMonotonicities:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.sampled_from([32, 64, 128, 256]),
        service=st.floats(min_value=100.0, max_value=5_000.0),
    )
    def test_more_noise_never_helps(self, n, service):
        """Adding a daemon can only slow the mean down (statistically)."""
        quiet = AllreduceSeriesModel(config(n), n, 16, seed=1).run_series(120, 200.0)
        noisy_cfg = config(n, daemon_period_us=ms(20), daemon_service_us=service)
        noisy = AllreduceSeriesModel(noisy_cfg, n, 16, seed=1).run_series(120, 200.0)
        assert noisy.mean_us >= quiet.mean_us - 1.0

    @settings(max_examples=15, deadline=None)
    @given(n=st.sampled_from([32, 64, 128]))
    def test_heavier_service_hurts_more(self, n):
        light_cfg = config(n, daemon_period_us=ms(10), daemon_service_us=200.0)
        heavy_cfg = config(n, daemon_period_us=ms(10), daemon_service_us=2_000.0)
        light = AllreduceSeriesModel(light_cfg, n, 16, seed=2).run_series(150, 200.0)
        heavy = AllreduceSeriesModel(heavy_cfg, n, 16, seed=2).run_series(150, 200.0)
        assert heavy.mean_us > light.mean_us

    @settings(max_examples=15, deadline=None)
    @given(pair=st.sampled_from([(32, 128), (64, 256), (128, 512)]))
    def test_more_ranks_never_faster(self, pair):
        small_n, big_n = pair
        small = AllreduceSeriesModel(config(small_n), small_n, 16, seed=3).run_series(40)
        big = AllreduceSeriesModel(config(big_n), big_n, 16, seed=3).run_series(40)
        assert big.mean_us >= small.mean_us - 1.0

    @settings(max_examples=10, deadline=None)
    @given(n=st.sampled_from([64, 128]), mult=st.sampled_from([5, 25]))
    def test_big_ticks_reduce_quiet_latency(self, n, mult):
        base = AllreduceSeriesModel(config(n), n, 16, seed=4).run_series(100, 200.0)
        bt_cfg = config(n, big_tick_multiplier=mult)
        bt = AllreduceSeriesModel(bt_cfg, n, 16, seed=4).run_series(100, 200.0)
        # Fewer tick interrupts -> no worse on a quiet machine.
        assert bt.mean_us <= base.mean_us + 2.0

    @settings(max_examples=10, deadline=None)
    @given(n=st.sampled_from([33, 65, 100, 250]))
    def test_durations_always_positive_and_finite(self, n):
        cfg = config(n, daemon_period_us=ms(5), daemon_service_us=1_000.0)
        res = AllreduceSeriesModel(cfg, n, 16, seed=5).run_series(60, 100.0)
        assert np.all(np.isfinite(res.durations_us))
        assert np.all(res.durations_us > 0)


class TestCoschedDutyProperty:
    @settings(max_examples=10, deadline=None)
    @given(duty=st.floats(min_value=0.5, max_value=0.95))
    def test_stratified_split_respects_duty(self, duty):
        from repro.config import CoschedConfig
        from repro.daemons.catalog import standard_noise

        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=8, cpus_per_node=16),
            kernel=KernelConfig.prototype(),
            mpi=MpiConfig.with_long_polling(),
            cosched=CoschedConfig(enabled=True, duty_cycle=duty),
            noise=standard_noise(include_cron=False),
            seed=6,
        )
        model = AllreduceSeriesModel(cfg, 128, 16, seed=6)
        res = model.run_series(200, 200.0)
        assert len(res.durations_us) == 200
        assert np.all(np.isfinite(res.durations_us))
