"""Property-based scheduler invariants under randomised workloads.

The dispatcher is the substrate every result rests on; these tests drive
it with arbitrary thread mixes (priorities, affinities, burst/sleep
patterns, random external priority changes) and assert the invariants
that must survive any interleaving:

* structural sanity — a CPU runs at most one thread, a RUNNING thread is
  on exactly one CPU, READY threads are queued;
* liveness — every compute-only thread finishes, given time;
* work conservation — CPU time credited equals work requested (plus
  bounded dispatch overheads);
* determinism — identical inputs give identical schedules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KernelConfig
from repro.kernel.thread import Compute, Sleep, ThreadState
from repro.units import ms, s
from tests.conftest import make_harness

# One random thread: (priority, affinity, allow_steal, [bursts], [sleeps])
thread_spec = st.tuples(
    st.integers(min_value=10, max_value=120),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
    st.lists(st.floats(min_value=1.0, max_value=20_000.0), min_size=1, max_size=4),
    st.lists(st.floats(min_value=0.0, max_value=30_000.0), min_size=0, max_size=3),
)

kernel_options = st.fixed_dictionaries(
    {
        "realtime_scheduling": st.booleans(),
        "fix_reverse_preemption": st.booleans(),
        "fix_multi_ipi": st.booleans(),
        "big_tick_multiplier": st.sampled_from([1, 5, 25]),
        "tick_phase": st.sampled_from(["staggered", "aligned"]),
        "daemons_global_queue": st.booleans(),
        "steal_enabled": st.booleans(),
    }
)


def build_workload(specs, kernel_kwargs):
    h = make_harness(n_cpus=4, kernel=KernelConfig(context_switch_us=2.0, **kernel_kwargs))
    threads = []
    for i, (prio, cpu, steal, bursts, sleeps) in enumerate(specs):
        def body(bursts=bursts, sleeps=sleeps):
            for j, b in enumerate(bursts):
                yield Compute(b)
                if j < len(sleeps):
                    yield Sleep(sleeps[j])

        t = h.spawn(
            body(), name=f"t{i}", priority=prio, cpu=cpu, allow_steal=steal,
            use_global_queue=(i % 3 == 0),
        )
        threads.append(t)
    return h, threads


class TestRandomWorkloads:
    @settings(max_examples=40, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=1, max_size=12), kernel_kwargs=kernel_options)
    def test_liveness_and_conservation(self, specs, kernel_kwargs):
        h, threads = build_workload(specs, kernel_kwargs)
        h.run(s(10))
        ipi_allowance = h.config.ipi_cost_us * h.sched.ipis_sent
        for t, (prio, cpu, steal, bursts, sleeps) in zip(threads, specs):
            assert t.state is ThreadState.FINISHED, f"{t!r} never finished"
            requested = sum(bursts)
            # CPU time = requested work + dispatch overheads: context
            # switches, double-charged remainders at preemptions, and IPI
            # handler costs (charged to whoever was running on arrival).
            overhead_allowance = (
                2.0 * (t.stats.dispatches + t.stats.preemptions + 1) + ipi_allowance
            )
            assert t.stats.cpu_time_us >= requested - 1e-6
            assert t.stats.cpu_time_us <= requested + overhead_allowance + 1.0

    @settings(max_examples=25, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=2, max_size=10), kernel_kwargs=kernel_options)
    def test_structural_invariants_sampled(self, specs, kernel_kwargs):
        h, threads = build_workload(specs, kernel_kwargs)
        violations = []

        def probe():
            seen_cpus = {}
            for t in threads:
                if t.state is ThreadState.RUNNING:
                    if t.cpu is None:
                        violations.append(f"{t} RUNNING without a CPU")
                    elif t.cpu in seen_cpus:
                        violations.append(f"cpu {t.cpu} double-booked")
                    else:
                        seen_cpus[t.cpu] = t
                    if h.sched.cpus[t.cpu].thread is not t:
                        violations.append(f"cpu record mismatch for {t}")
                elif t.state is ThreadState.READY:
                    if t.rq_entry is None or not t.rq_entry.live:
                        violations.append(f"{t} READY but not queued")
                elif t.state in (ThreadState.BLOCKED, ThreadState.SLEEPING):
                    if t.cpu is not None:
                        violations.append(f"{t} blocked while on a CPU")
            if h.sim.now < ms(200):
                h.sim.schedule(137.0, probe)

        h.sim.schedule(0.0, probe)
        h.run(s(10))
        assert violations == []

    @settings(max_examples=20, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=1, max_size=8), kernel_kwargs=kernel_options)
    def test_deterministic_replay(self, specs, kernel_kwargs):
        h1, t1 = build_workload(specs, kernel_kwargs)
        h1.run(s(10))
        h2, t2 = build_workload(specs, kernel_kwargs)
        h2.run(s(10))
        for a, b in zip(t1, t2):
            assert a.stats.cpu_time_us == b.stats.cpu_time_us
            assert a.stats.dispatches == b.stats.dispatches
            assert a.stats.preemptions == b.stats.preemptions

    @settings(max_examples=20, deadline=None)
    @given(
        specs=st.lists(thread_spec, min_size=2, max_size=8),
        kernel_kwargs=kernel_options,
        flips=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50_000.0),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=10, max_value=120),
            ),
            max_size=6,
        ),
    )
    def test_external_priority_fuzz(self, specs, kernel_kwargs, flips):
        """Random renices at random times (the co-scheduler's tool) must
        never wedge or corrupt the dispatcher."""
        h, threads = build_workload(specs, kernel_kwargs)
        for when, idx, prio in flips:
            if idx < len(threads):
                def flip(t=threads[idx], p=prio):
                    if t.state is not ThreadState.FINISHED:
                        h.sched.set_priority(t, p)

                h.sim.schedule_at(when, flip)
        h.run(s(10))
        assert all(t.state is ThreadState.FINISHED for t in threads)

    @settings(max_examples=15, deadline=None)
    @given(specs=st.lists(thread_spec, min_size=1, max_size=10), kernel_kwargs=kernel_options)
    def test_cpu_busy_accounting_consistent(self, specs, kernel_kwargs):
        """Aggregate CPU busy time equals aggregate thread CPU time plus
        spin/tick slack — and never exceeds capacity."""
        h, threads = build_workload(specs, kernel_kwargs)
        h.run(s(10))
        busy = sum(c.busy_us for c in h.sched.cpus)
        thread_time = sum(t.stats.cpu_time_us for t in threads)
        assert busy <= 4 * s(10) + 1e-6
        # Busy wall time covers at least the credited CPU work.
        assert busy >= thread_time - 1e-6
