"""Checkpoint/restore: policy validation, atomic writes, retention, and
the round-trip determinism acceptance check (restore at T and continue →
bit-identical to never having stopped)."""

import pickle

import pytest

from repro.apps.aggregate_trace import AggregateTraceConfig, aggregate_trace_body
from repro.checkpoint import (
    CheckpointManager,
    RestoreMismatch,
    audit_event_callbacks,
    capture_state,
    list_checkpoints,
    register_builder,
    state_fingerprint,
)
from repro.config import (
    CheckpointPolicy,
    ClusterConfig,
    CoschedConfig,
    FaultConfig,
    MachineConfig,
    MpiConfig,
    NodeFaultSpec,
)
from repro.system import System
from repro.units import ms

HORIZON = ms(400)
CHUNK = ms(20)


class MiniDriver:
    """Small checkpointable run: 2 nodes, cosched, optional node crash."""

    def __init__(self, seed: int, faults: bool) -> None:
        fc = FaultConfig()
        if faults:
            fc = FaultConfig(
                enabled=True,
                msg_drop_prob=0.02,
                node_faults=(
                    NodeFaultSpec(node=1, kind="crash", at_us=ms(30), duration_us=ms(20)),
                ),
            )
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=4),
            cosched=CoschedConfig(enabled=True, period_us=ms(100)),
            mpi=MpiConfig(progress_threads_enabled=False),
            faults=fc,
            seed=seed,
        )
        self.system = System(cfg)
        self.sink: dict = {}
        # Sized so the job stays busy past HORIZON: checkpoints land in a
        # live simulation, not an idle one.
        app = AggregateTraceConfig(
            loops=20, calls_per_loop=16, trace_block=8, compute_between_us=ms(1)
        )
        self.job = self.system.launch(
            8, 4, aggregate_trace_body(app, self.sink, set()), name="mini"
        )


@register_builder("test.mini")
def build_mini(seed: int = 7, faults: bool = False) -> MiniDriver:
    return MiniDriver(seed, faults)


def drive(driver, to_us, mgr=None, start=0.0):
    t = start
    while t < to_us:
        t = min(to_us, t + CHUNK)
        driver.system.sim.run_until(t)
        if mgr is not None:
            mgr.tick()


class TestCheckpointPolicy:
    def test_enabled_requires_an_interval(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(enabled=True)

    @pytest.mark.parametrize(
        "kw",
        [
            {"interval_sim_us": 0.0},
            {"interval_sim_us": -1.0},
            {"interval_wall_s": 0.0},
            {"keep_last": 0},
        ],
    )
    def test_bad_values_raise(self, kw):
        with pytest.raises(ValueError):
            CheckpointPolicy(**kw)

    def test_disabled_manager_never_due(self, tmp_path):
        d = build_mini()
        mgr = CheckpointManager(d, "test.mini", {}, CheckpointPolicy(), tmp_path)
        drive(d, ms(50), mgr)
        assert not mgr.due() and mgr.written == []


class TestCalendarAudit:
    def test_mini_driver_calendar_is_rebuildable(self):
        """Every queued callback is a bound method a rebuild recreates —
        no closures, which a checkpoint could never restore."""
        d = build_mini()
        drive(d, ms(100))
        assert audit_event_callbacks(d.system.sim) == []

    def test_closure_callbacks_are_flagged(self):
        d = build_mini()

        def oops():
            pass

        d.system.sim.schedule(50.0, oops)
        offenders = audit_event_callbacks(d.system.sim)
        assert offenders and all("<locals>" in ref for ref in offenders)


class TestRoundTrip:
    @pytest.mark.parametrize("faults", [False, True])
    def test_restore_and_continue_is_bit_identical(self, tmp_path, faults):
        """The acceptance check: crash at 60 %, resume from the last
        checkpoint, run to the horizon — same fingerprint as a run that
        was never interrupted, with and without injected faults."""
        args = {"seed": 7, "faults": faults}
        policy = CheckpointPolicy(enabled=True, interval_sim_us=ms(80), keep_last=2)

        ref = build_mini(**args)
        drive(ref, HORIZON)
        fp_ref = state_fingerprint(capture_state(ref.system))

        victim = build_mini(**args)
        mgr = CheckpointManager(victim, "test.mini", args, policy, tmp_path)
        drive(victim, 0.6 * HORIZON, mgr)
        assert mgr.written  # at least one checkpoint landed before the "crash"
        del victim, mgr

        resumed = CheckpointManager.resume_latest(tmp_path, policy=policy)
        assert resumed is not None
        assert resumed.system.sim.now < HORIZON  # genuinely resumed mid-run
        drive(resumed.driver, HORIZON, resumed, start=resumed.system.sim.now)
        assert resumed.system.sim.events_processed == ref.system.sim.events_processed
        assert state_fingerprint(capture_state(resumed.system)) == fp_ref

    def test_resume_latest_empty_dir_returns_none(self, tmp_path):
        assert CheckpointManager.resume_latest(tmp_path) is None


class TestWriteDiscipline:
    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        d = build_mini()
        policy = CheckpointPolicy(enabled=True, interval_sim_us=ms(40), keep_last=2)
        mgr = CheckpointManager(d, "test.mini", {}, policy, tmp_path)
        drive(d, ms(200), mgr)
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".ckpt-*")) == []

    def test_keep_last_prunes_old_checkpoints(self, tmp_path):
        d = build_mini()
        policy = CheckpointPolicy(enabled=True, interval_sim_us=ms(40), keep_last=2)
        mgr = CheckpointManager(d, "test.mini", {}, policy, tmp_path)
        drive(d, ms(400), mgr)
        on_disk = list_checkpoints(tmp_path)
        assert len(on_disk) == 2
        # The newest two survive, in event order.
        assert on_disk == mgr.written

    def test_cadence_respects_interval(self, tmp_path):
        d = build_mini()
        policy = CheckpointPolicy(enabled=True, interval_sim_us=ms(100), keep_last=10)
        mgr = CheckpointManager(d, "test.mini", {}, policy, tmp_path)
        drive(d, ms(400), mgr)
        # 400ms at a 100ms cadence: 4 checkpoints, ±1 for chunk phasing.
        assert 3 <= len(mgr.written) <= 5


class TestRestoreVerification:
    def test_tampered_fingerprint_is_rejected(self, tmp_path):
        d = build_mini()
        policy = CheckpointPolicy(enabled=True, interval_sim_us=ms(40))
        mgr = CheckpointManager(d, "test.mini", {}, policy, tmp_path)
        drive(d, ms(100), mgr)
        path = mgr.written[-1]
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["fingerprint"] = "0" * 64
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(RestoreMismatch):
            CheckpointManager.restore(path)

    def test_wrong_builder_args_are_rejected(self, tmp_path):
        """A checkpoint whose builder args no longer reproduce the run
        (here: a different seed) must refuse to continue."""
        d = build_mini(seed=7)
        policy = CheckpointPolicy(enabled=True, interval_sim_us=ms(40))
        mgr = CheckpointManager(d, "test.mini", {"seed": 7}, policy, tmp_path)
        drive(d, ms(100), mgr)
        path = mgr.written[-1]
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["args"] = {"seed": 8}
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        with pytest.raises(RestoreMismatch):
            CheckpointManager.restore(path)


class TestZeroOverhead:
    def test_monitoring_leaves_the_run_bit_identical(self, tmp_path):
        """Checkpointing + full invariant passes + the per-event sanitizer
        add zero events and perturb nothing: the monitored run's state
        fingerprint equals the plain run's."""
        plain = build_mini()
        drive(plain, ms(200))
        fp_plain = state_fingerprint(capture_state(plain.system))

        watched = build_mini()
        policy = CheckpointPolicy(
            enabled=True, interval_sim_us=ms(50), keep_last=3, sanitize=True
        )
        mgr = CheckpointManager(watched, "test.mini", {}, policy, tmp_path)
        drive(watched, ms(200), mgr)
        assert mgr.written  # checkpoints (and invariant passes) happened
        assert watched.system.sim.events_processed == plain.system.sim.events_processed
        assert state_fingerprint(capture_state(watched.system)) == fp_plain
