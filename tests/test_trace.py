"""Trace recorder and attribution analysis."""

import pytest

from repro.kernel.thread import Thread
from repro.trace.analysis import attribute_window, explain_outliers, window_breakdown
from repro.trace.recorder import TraceRecorder


def thread(name, category):
    return Thread(None, name=name, priority=60, node_id=0, affinity_cpu=0, category=category)


class TestRecorder:
    def test_records_interval(self):
        tr = TraceRecorder()
        tr.record_interval(0, 1, thread("a", "app"), 0.0, 10.0)
        assert len(tr) == 1
        iv = tr.intervals[0]
        assert iv.duration == 10.0
        assert iv.category == "app"

    def test_disabled_is_noop(self):
        tr = TraceRecorder(enabled=False)
        tr.record_interval(0, 1, thread("a", "app"), 0.0, 10.0)
        tr.mark("m", 0, 0, 5.0)
        assert len(tr) == 0 and tr.marks == []

    def test_node_filter(self):
        tr = TraceRecorder(nodes=[1])
        tr.record_interval(0, 0, thread("a", "app"), 0.0, 1.0)
        tr.record_interval(1, 0, thread("b", "app"), 0.0, 1.0)
        assert [iv.node for iv in tr.intervals] == [1]

    def test_category_filter(self):
        tr = TraceRecorder(categories=["daemon"])
        tr.record_interval(0, 0, thread("a", "app"), 0.0, 1.0)
        tr.record_interval(0, 0, thread("d", "daemon"), 0.0, 1.0)
        assert [iv.category for iv in tr.intervals] == ["daemon"]

    def test_min_duration_filter(self):
        tr = TraceRecorder(min_duration_us=5.0)
        tr.record_interval(0, 0, thread("a", "app"), 0.0, 1.0)
        tr.record_interval(0, 0, thread("a", "app"), 0.0, 10.0)
        assert len(tr) == 1

    def test_marks_and_queries(self):
        tr = TraceRecorder()
        tr.mark("aggr.block", 0, 3, 42.0, payload=(1, 64))
        tr.mark("other", 0, 3, 43.0)
        assert len(tr.marks_named("aggr.block")) == 1
        assert tr.marks_named("aggr.block")[0].payload == (1, 64)

    def test_clear(self):
        tr = TraceRecorder()
        tr.record_interval(0, 0, thread("a", "app"), 0.0, 1.0)
        tr.mark("m", 0, 0, 0.0)
        tr.clear()
        assert len(tr) == 0 and tr.marks == []

    def test_intervals_on(self):
        tr = TraceRecorder()
        tr.record_interval(0, 0, thread("a", "app"), 0.0, 1.0)
        tr.record_interval(2, 0, thread("b", "app"), 0.0, 1.0)
        assert len(tr.intervals_on(2)) == 1


class TestAttribution:
    def make_trace(self):
        tr = TraceRecorder()
        # App runs 0-100 on cpu 0; daemon interrupts 40-60 on cpu 1;
        # timer thread 80-90 on cpu 1.
        tr.record_interval(0, 0, thread("job.r0", "app"), 0.0, 100.0)
        tr.record_interval(0, 1, thread("syncd", "daemon"), 40.0, 60.0)
        tr.record_interval(0, 1, thread("job.r0.timer", "mpi_timer"), 80.0, 90.0)
        return tr

    def test_window_attribution_sums_overlap(self):
        att = attribute_window(self.make_trace(), node=0, t0=0.0, t1=100.0)
        assert att.by_name == {"syncd": 20.0, "job.r0.timer": 10.0}
        assert att.interference_us == 30.0

    def test_partial_overlap_clipped(self):
        att = attribute_window(self.make_trace(), node=0, t0=50.0, t1=85.0)
        assert att.by_name["syncd"] == pytest.approx(10.0)
        assert att.by_name["job.r0.timer"] == pytest.approx(5.0)

    def test_top_orders_by_cpu(self):
        att = attribute_window(self.make_trace(), node=0, t0=0.0, t1=100.0)
        assert att.top(1) == [("syncd", 20.0)]

    def test_other_node_excluded(self):
        att = attribute_window(self.make_trace(), node=1, t0=0.0, t1=100.0)
        assert att.interference_us == 0.0

    def test_window_breakdown_includes_idle(self):
        bd = window_breakdown(self.make_trace(), node=0, t0=0.0, t1=100.0, n_cpus=2)
        assert bd["app"] == pytest.approx(0.5)
        assert bd["daemon"] == pytest.approx(0.1)
        assert bd["mpi_timer"] == pytest.approx(0.05)
        assert bd["idle"] == pytest.approx(0.35)

    def test_window_breakdown_empty_window_raises(self):
        with pytest.raises(ValueError):
            window_breakdown(self.make_trace(), 0, 5.0, 5.0, 2)

    def test_explain_outliers_sorted_and_thresholded(self):
        tr = self.make_trace()
        windows = [(0.0, 30.0), (35.0, 95.0), (95.0, 100.0)]
        out = explain_outliers(tr, windows, node=0, threshold_us=20.0)
        # Window 1 (60 long) and window 0 (30 long) exceed 20; sorted desc.
        assert [o[0] for o in out] == [1, 0]
        top_names = [name for name, _ in out[0][2]]
        assert "syncd" in top_names
