"""Daemon engine + catalog: periodicity, batching, budgets, ablations."""

import pytest

from repro.config import (
    ClusterConfig,
    DaemonSpec,
    KernelConfig,
    MachineConfig,
    NoiseConfig,
)
from repro.daemons.catalog import (
    cron_health_check,
    interrupt_handlers,
    scale_noise,
    standard_daemons,
    standard_noise,
)
from repro.daemons.engine import install_noise
from repro.machine import Cluster
from repro.rng import Constant
from repro.units import ms, s


def one_node_cluster(kernel=None, seed=0):
    return Cluster(
        ClusterConfig(
            machine=MachineConfig(n_nodes=1, cpus_per_node=4),
            kernel=kernel if kernel is not None else KernelConfig(),
            seed=seed,
        )
    )


def spec(**kw):
    base = dict(name="d", period_us=ms(10), service=Constant(100.0), jitter=0.0)
    base.update(kw)
    return DaemonSpec(**base)


class TestDaemonSpec:
    def test_mean_service_includes_pagefaults(self):
        d = spec(pagefault_prob=0.5, pagefault_cost_us=200.0)
        assert d.mean_service_us() == pytest.approx(100.0 + 100.0)

    def test_cpu_fraction_per_node(self):
        d = spec()  # 100us every 10ms = 1% of one CPU
        assert d.cpu_fraction(cpus_per_node=4) == pytest.approx(0.01 / 4)

    def test_cpu_fraction_per_cpu_daemon(self):
        d = spec(per_cpu=True)
        assert d.cpu_fraction(cpus_per_node=4) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            spec(period_us=0.0)
        with pytest.raises(ValueError):
            spec(priority=500)
        with pytest.raises(ValueError):
            spec(pagefault_prob=1.5)


class TestNoiseConfig:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            NoiseConfig(daemons=(spec(), spec()))

    def test_get_and_without(self):
        nc = NoiseConfig(daemons=(spec(name="a"), spec(name="b")))
        assert nc.get("a").name == "a"
        assert [d.name for d in nc.without("a").daemons] == ["b"]
        with pytest.raises(KeyError):
            nc.without("zzz")
        with pytest.raises(KeyError):
            nc.get("zzz")


class TestEngine:
    def test_periodic_activations(self):
        c = one_node_cluster()
        nc = NoiseConfig(daemons=(spec(period_us=ms(20), phase_us=0.0),))
        (h,) = install_noise(c, nc)
        c.run_for(ms(105))
        # Activations at ~0, 20, 40, 60, 80, 100 ms (tick-quantised).
        assert h.activations[0] == 6

    def test_jitter_zero_is_exactly_periodic(self):
        c = one_node_cluster()
        nc = NoiseConfig(daemons=(spec(period_us=ms(10), phase_us=5_000.0),))
        (h,) = install_noise(c, nc)
        c.run_for(ms(95))
        assert h.activations[0] == 9

    def test_per_cpu_spawns_one_per_cpu(self):
        c = one_node_cluster()
        nc = NoiseConfig(daemons=(spec(per_cpu=True),))
        handles = install_noise(c, nc)
        assert len(handles) == 4
        assert {h.cpu for h in handles} == {0, 1, 2, 3}

    def test_horizon_stops_scheduling(self):
        c = one_node_cluster()
        nc = NoiseConfig(daemons=(spec(period_us=ms(10), phase_us=0.0),))
        (h,) = install_noise(c, nc, horizon_us=ms(35))
        c.sim.run(max_events=10_000)  # drains: no infinite generator
        assert h.activations[0] == 4  # t = 0, 10, 20, 30

    def test_aligned_phase_same_local_time_all_nodes(self):
        cfg = ClusterConfig(machine=MachineConfig(n_nodes=3, cpus_per_node=2), seed=5)
        c = Cluster(cfg)
        nc = NoiseConfig(daemons=(spec(phase="aligned", period_us=s(1)),))
        handles = install_noise(c, nc, horizon_us=0.0)
        assert len(handles) == 3

    def test_big_tick_batches_wakeups(self):
        """With 250 ms physical ticks, daemons with different phases fire
        at the same (coarse) boundaries — the batching of §3.1.1."""
        kernel = KernelConfig(big_tick_multiplier=25, tick_phase="aligned")
        c = one_node_cluster(kernel=kernel)
        run_times: dict[str, list] = {"a": [], "b": []}

        class Probe:
            def __init__(self):
                self.intervals = []

            def record_interval(self, node, cpu, thread, t0, t1):
                if thread.name in run_times:
                    run_times[thread.name].append(t0)

        c.trace = Probe()
        for node in c.nodes:
            node.scheduler.trace = c.trace
        nc = NoiseConfig(
            daemons=(
                spec(name="a", period_us=ms(100), phase_us=ms(3)),
                spec(name="b", period_us=ms(100), phase_us=ms(7)),
            )
        )
        install_noise(c, nc)
        c.run_for(s(1))
        # Both daemons' activations start at identical coarse boundaries.
        assert run_times["a"] and run_times["b"]
        for ta, tb in zip(run_times["a"], run_times["b"]):
            assert abs(ta - tb) <= 150.0  # only separated by service time? no: 2 idle cpus -> simultaneous

    def test_global_queue_penalty_applied(self):
        kernel = KernelConfig(daemons_global_queue=True, global_queue_penalty=0.5)
        c = one_node_cluster(kernel=kernel)
        probe = []

        class Probe:
            def record_interval(self, node, cpu, thread, t0, t1):
                if thread.category == "daemon":
                    probe.append(t1 - t0)

        c.trace = Probe()
        for node in c.nodes:
            node.scheduler.trace = c.trace
        nc = NoiseConfig(daemons=(spec(period_us=ms(50), phase_us=0.0),))
        install_noise(c, nc)
        c.run_for(ms(120))
        # Service 100us inflated by 50% (plus context switch).
        assert all(d >= 150.0 - 1e-6 for d in probe)


class TestCatalog:
    def test_noise_budget_in_paper_envelope(self):
        """Paper: system+daemon activity = 0.2%-1.1% of each CPU."""
        nc = standard_noise()
        frac = nc.total_cpu_fraction(16)
        tick = KernelConfig().tick_cost_us / KernelConfig().tick_period_us
        total = frac + tick
        assert 0.002 <= total <= 0.011

    def test_all_paper_daemons_present(self):
        names = {d.name for d in standard_noise().daemons}
        for expected in (
            "syncd", "mmfsd", "hatsd", "hats_nim", "mld",
            "inetd", "LoadL_startd", "hostmibd", "cron_health",
            "caddpin", "phxentdd",
        ):
            assert expected in names

    def test_daemons_at_paper_priority(self):
        for d in standard_daemons():
            if d.name == "mmfsd":
                assert d.priority == 40  # GPFS, the I/O-critical special case
            else:
                assert d.priority == 56

    def test_interrupt_handlers_are_hardware_per_cpu(self):
        for d in interrupt_handlers():
            assert d.per_cpu and d.hardware and not d.deferrable

    def test_cron_is_aligned_and_heavy(self):
        cron = cron_health_check()
        assert cron.phase == "aligned"
        assert cron.period_us == s(900)
        assert cron.mean_service_us() > ms(600)

    def test_cron_phase_pin(self):
        cron = cron_health_check(phase_us=ms(150))
        assert cron.phase_us == ms(150)

    def test_exclusions(self):
        assert "cron_health" not in {d.name for d in standard_noise(include_cron=False).daemons}
        names = {d.name for d in standard_noise(include_interrupts=False).daemons}
        assert "caddpin" not in names

    def test_scale_noise_divides_periods_only(self):
        nc = standard_noise()
        sc = scale_noise(nc, 10.0)
        for a, b in zip(nc.daemons, sc.daemons):
            assert b.period_us == pytest.approx(a.period_us / 10.0)
            assert b.service == a.service

    def test_scale_noise_validates(self):
        with pytest.raises(ValueError):
            scale_noise(standard_noise(), 0.0)

    def test_mmfsd_marked_io_critical(self):
        assert standard_noise().get("mmfsd").io_critical
