"""Reporting: ASCII charts and CLI plumbing."""

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.reporting import ascii_chart, text_table


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart([1, 2, 3], {"a": [10, 20, 30]}, width=20, height=5, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "*" in out
        assert "* a" in lines[-1]

    def test_extremes_on_border_rows(self):
        out = ascii_chart([0, 10], {"s": [0.0, 100.0]}, width=10, height=4)
        lines = out.splitlines()
        assert "100" in lines[0]         # y max labels the top row
        assert "*" in lines[0]           # max point plotted top
        assert "*" in lines[3]           # min point plotted bottom

    def test_multiple_series_markers(self):
        out = ascii_chart(
            [1, 2], {"one": [1, 2], "two": [2, 1]}, width=12, height=4
        )
        assert "*" in out and "o" in out
        assert "* one" in out and "o two" in out

    def test_flat_series_ok(self):
        out = ascii_chart([1, 2, 3], {"flat": [5, 5, 5]}, width=10, height=3)
        # Three plotted points plus the legend's marker.
        assert out.count("*") == 4

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"bad": [1]}, width=10, height=3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_chart([], {"a": []})

    def test_axis_labels(self):
        out = ascii_chart([1, 2], {"a": [1, 2]}, x_label="CPUs", y_label="us", height=6)
        assert "CPUs" in out and "us" in out


class TestCli:
    def test_fig1_runs(self, capsys):
        assert cli_main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_csv_option(self, tmp_path, capsys):
        assert cli_main(["fig3", "--quick", "--csv", str(tmp_path)]) == 0
        csv = (tmp_path / "fig3.csv").read_text()
        assert csv.startswith("procs,mean_us")
        assert len(csv.splitlines()) >= 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])

    def test_table_smoke(self):
        assert "x" in text_table(["x"], [(1,)])
