"""/etc/poe.priority parsing and the MP_PRIORITY matching semantics."""

import pytest

from repro.cosched.admin import PoePriorityFile, PriorityRecord
from repro.units import s

SAMPLE = """
# /etc/poe.priority — root-only writable, identical on each node
premium  jones   30 100 5 90
standard jones   50 100 10 80
premium  maskell 41 100 5 95   # tuned above GPFS mmfsd at 40
"""


class TestParsing:
    def test_parses_records_and_comments(self):
        f = PoePriorityFile.parse(SAMPLE)
        assert len(f.records) == 3
        rec = f.records[0]
        assert rec == PriorityRecord("premium", "jones", 30, 100, 5.0, 90.0)

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError, match="6 fields"):
            PoePriorityFile.parse("premium jones 30 100 5\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            PoePriorityFile.parse("premium jones thirty 100 5 90\n")

    def test_priority_range_validated(self):
        with pytest.raises(ValueError, match="priority"):
            PoePriorityFile.parse("p u 300 100 5 90\n")

    def test_duty_range_validated(self):
        with pytest.raises(ValueError, match="duty"):
            PoePriorityFile.parse("p u 30 100 5 150\n")

    def test_period_validated(self):
        with pytest.raises(ValueError, match="period"):
            PoePriorityFile.parse("p u 30 100 0 90\n")

    def test_empty_file(self):
        assert PoePriorityFile.parse("").records == []

    def test_load_from_disk(self, tmp_path):
        p = tmp_path / "poe.priority"
        p.write_text(SAMPLE)
        assert len(PoePriorityFile.load(p).records) == 3


class TestMatching:
    def test_match_class_and_user(self):
        f = PoePriorityFile.parse(SAMPLE)
        rec = f.match("premium", "maskell")
        assert rec is not None and rec.favored == 41

    def test_first_match_wins(self):
        f = PoePriorityFile.parse(SAMPLE)
        assert f.match("premium", "jones").favored == 30

    def test_no_match_returns_none(self):
        """Paper: 'an attention message is printed and the job runs as if
        no priority had been requested.'"""
        f = PoePriorityFile.parse(SAMPLE)
        assert f.match("premium", "nobody") is None
        assert f.match("gold", "jones") is None


class TestToConfig:
    def test_to_config_translation(self):
        rec = PriorityRecord("premium", "jones", 30, 100, 5.0, 90.0)
        cfg = rec.to_config()
        assert cfg.enabled
        assert cfg.favored_priority == 30
        assert cfg.unfavored_priority == 100
        assert cfg.period_us == s(5)
        assert cfg.duty_cycle == pytest.approx(0.90)

    def test_to_config_overrides(self):
        rec = PriorityRecord("premium", "jones", 30, 100, 5.0, 90.0)
        cfg = rec.to_config(sync_clock=False)
        assert not cfg.sync_clock
