"""Documentation coverage gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes that a property of the build rather than a review checklist.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (meth.__doc__ and meth.__doc__.strip()):
                    # Tiny accessors are exempt only if trivially named
                    # properties; plain methods must be documented.
                    missing.append(f"{name}.{mname}")
    assert not missing, f"{module.__name__}: undocumented public items: {missing}"
