"""Dispatcher fundamentals: compute, sleep, block, priorities, stealing."""

import pytest

from repro.config import KernelConfig
from repro.kernel.thread import (
    Block,
    Compute,
    SetPriority,
    Sleep,
    SleepUntil,
    ThreadState,
    YieldCpu,
)
from tests.conftest import make_harness


class TestCompute:
    def test_single_compute_runs_to_completion(self, harness):
        t = harness.spawn(harness.worker("a", [100.0]))
        harness.run(1000.0)
        assert t.state is ThreadState.FINISHED
        assert harness.times("a") == [100.0]

    def test_sequential_computes_accumulate(self, harness):
        harness.spawn(harness.worker("a", [100.0, 50.0, 25.0]))
        harness.run(1000.0)
        assert harness.times("a") == [100.0, 150.0, 175.0]

    def test_zero_compute_is_free(self, harness):
        harness.spawn(harness.worker("a", [0.0, 10.0]))
        harness.run(1000.0)
        assert harness.times("a") == [0.0, 10.0]

    def test_two_threads_two_cpus_parallel(self, harness):
        harness.spawn(harness.worker("a", [100.0]), cpu=0)
        harness.spawn(harness.worker("b", [100.0]), cpu=1)
        harness.run(1000.0)
        assert harness.times("a") == [100.0]
        assert harness.times("b") == [100.0]

    def test_two_threads_one_cpu_serialize(self, harness):
        harness.spawn(harness.worker("a", [100.0]), cpu=0)
        harness.spawn(harness.worker("b", [100.0]), cpu=0, allow_steal=False)
        # CPU 1 idle but b is bound... allow_steal False keeps it on cpu 0.
        harness.run(1000.0)
        assert harness.times("a") == [100.0]
        assert harness.times("b") == [200.0]

    def test_cpu_time_accounted(self, harness):
        t = harness.spawn(harness.worker("a", [100.0, 200.0]))
        harness.run(1000.0)
        assert t.stats.cpu_time_us == pytest.approx(300.0)

    def test_context_switch_charged(self):
        h = make_harness(kernel=KernelConfig(context_switch_us=5.0))
        h.spawn(h.worker("a", [100.0]))
        h.run(1000.0)
        assert h.times("a") == [105.0]


class TestSleepAndBlock:
    def test_sleep_quantized_to_tick(self, harness):
        # Sleep wakes snap to the CPU's tick boundary at/after the deadline.
        def body():
            yield Sleep(3_000.0)
            harness.mark("woke")

        harness.spawn(body(), cpu=0)
        harness.run(50_000.0)
        (when,) = harness.times("woke")
        assert when >= 3_000.0
        assert harness.ticks.is_boundary(0, when)

    def test_sleep_unquantized_exact(self, harness):
        def body():
            yield Sleep(3_000.0)
            harness.mark("woke")

        harness.spawn(body(), tick_quantized=False)
        harness.run(50_000.0)
        assert harness.times("woke") == [3_000.0]

    def test_sleep_until_past_wakes_immediately(self, harness):
        def body():
            yield Compute(50.0)
            yield SleepUntil(10.0)  # already passed
            harness.mark("woke")

        harness.spawn(body(), tick_quantized=False)
        harness.run(1000.0)
        assert harness.times("woke") == [50.0]

    def test_sleep_releases_cpu(self, harness):
        def sleeper():
            yield Sleep(10_000.0)

        harness.spawn(sleeper(), cpu=0)
        harness.spawn(harness.worker("b", [100.0]), cpu=0)
        harness.run(1000.0)
        assert harness.times("b") == [100.0]

    def test_block_until_woken(self, harness):
        def body():
            got = yield Block()
            harness.mark(f"woke:{got}")

        t = harness.spawn(body())
        harness.run(500.0)
        assert t.state is ThreadState.BLOCKED
        harness.sim.schedule(0.0, harness.sched.wake, t, "payload")
        harness.run(600.0)
        assert harness.log[-1][1] == "woke:payload"

    def test_wake_non_blocked_raises(self, harness):
        t = harness.spawn(harness.worker("a", [10_000.0]))
        with pytest.raises(RuntimeError):
            harness.sched.wake(t)


class TestPriorities:
    def test_better_priority_dispatched_first(self, harness):
        # Queue two on one busy CPU; the better one runs first when free.
        harness.spawn(harness.worker("run", [50.0]), cpu=0)
        harness.spawn(harness.worker("lo", [10.0]), priority=90, cpu=0, allow_steal=False)
        harness.spawn(harness.worker("hi", [10.0]), priority=30, cpu=0, allow_steal=False)
        harness.run(10_000.0)
        assert harness.times("hi")[0] < harness.times("lo")[0]

    def test_set_priority_syscall_on_self(self, harness):
        def body():
            yield SetPriority(40)
            harness.mark("after")
            yield Compute(10.0)

        t = harness.spawn(body())
        harness.run(100.0)
        assert t.priority == 40

    def test_set_priority_validates(self, harness):
        t = harness.spawn(harness.worker("a", [10.0]))
        with pytest.raises(ValueError):
            harness.sched.set_priority(t, 200)

    def test_priority_change_callback_fires(self, harness):
        calls = []
        t = harness.spawn(harness.worker("a", [10_000.0]))
        t.on_priority_change = lambda th, old, new: calls.append((old, new))
        harness.sched.set_priority(t, 30)
        assert calls == [(60, 30)]

    def test_ready_thread_reprioritised_repositions(self, harness):
        harness.spawn(harness.worker("run", [1_000.0]), cpu=0)
        a = harness.spawn(harness.worker("a", [10.0]), priority=80, cpu=0, allow_steal=False)
        b = harness.spawn(harness.worker("b", [10.0]), priority=70, cpu=0, allow_steal=False)
        harness.sched.set_priority(a, 50)  # a should now beat b
        harness.run(20_000.0)
        assert harness.times("a")[0] < harness.times("b")[0]


class TestStealing:
    def test_idle_cpu_steals_ready_work(self, harness):
        harness.spawn(harness.worker("busy", [1_000.0]), cpu=0)
        harness.spawn(harness.worker("d", [50.0]), cpu=0, allow_steal=True)
        harness.run(5_000.0)
        # The stealable thread migrates to idle CPU 1 and finishes early.
        assert harness.times("d") == [50.0]

    def test_bound_thread_waits_for_home_cpu(self, harness):
        harness.spawn(harness.worker("busy", [1_000.0]), cpu=0)
        harness.spawn(harness.worker("bound", [50.0]), cpu=0, allow_steal=False)
        harness.run(5_000.0)
        assert harness.times("bound") == [1_050.0]

    def test_steal_disabled_by_config(self):
        h = make_harness(kernel=KernelConfig(steal_enabled=False, context_switch_us=0.0))
        h.spawn(h.worker("busy", [1_000.0]), cpu=0)
        h.spawn(h.worker("d", [50.0]), cpu=0, allow_steal=True)
        h.run(5_000.0)
        assert h.times("d") == [1_050.0]


class TestYield:
    def test_yield_rotates_equals(self, harness):
        order = []

        def body(tag, n):
            for _ in range(n):
                yield Compute(10.0)
                order.append(tag)
                yield YieldCpu()

        harness.spawn(body("a", 3), cpu=0)
        harness.spawn(body("b", 3), cpu=0, allow_steal=False)
        # Force both onto cpu 0: make cpu 1 busy.
        harness.spawn(harness.worker("busy", [10_000.0]), cpu=1)
        harness.run(20_000.0)
        assert order[:4] == ["a", "b", "a", "b"]

    def test_finished_thread_state(self, harness):
        t = harness.spawn(harness.worker("a", [10.0]))
        harness.run(100.0)
        assert t.finished
        assert t.gen is None

    def test_on_finish_callback(self, harness):
        done = []
        t = harness.spawn(harness.worker("a", [10.0]))
        t.on_finish = lambda th: done.append(th.tid)
        harness.run(100.0)
        assert done == [t.tid]


class TestSpawnValidation:
    def test_bad_affinity_raises(self, harness):
        with pytest.raises(ValueError):
            harness.spawn(harness.worker("a", [1.0]), cpu=99)

    def test_deferred_start(self, harness):
        t = harness.spawn(harness.worker("a", [10.0]), start=False)
        assert t.state is ThreadState.NEW
        harness.sched.start(t)
        harness.run(100.0)
        assert t.finished

    def test_start_twice_raises(self, harness):
        t = harness.spawn(harness.worker("a", [10.0]), start=False)
        harness.sched.start(t)
        with pytest.raises(RuntimeError):
            harness.sched.start(t)

    def test_idle_cpus_reporting(self, harness):
        assert harness.sched.idle_cpus() == 2
        harness.spawn(harness.worker("a", [1_000.0]))
        assert harness.sched.idle_cpus() == 1
