"""Whole-system integration: DES end-to-end runs, DES↔model
cross-validation, and the paper's headline mechanisms at DES scale."""

import numpy as np
import pytest

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.system import System
from repro.units import ms, s


def build_system(n_nodes=2, cpn=8, kernel=None, noise=None, mpi=None, cosched=None, seed=3):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpn),
        kernel=kernel if kernel is not None else KernelConfig(),
        noise=noise if noise is not None else NoiseConfig(),
        mpi=mpi if mpi is not None else MpiConfig(progress_threads_enabled=False),
        cosched=cosched if cosched is not None else CoschedConfig(enabled=False),
        seed=seed,
    )
    return System(cfg)


class TestDesModelCrossValidation:
    """The two implementations must agree where both can run."""

    def test_zero_noise_base_latency_agrees(self):
        n, tpn = 16, 8
        sysm = build_system(n_nodes=2, cpn=8)
        des = run_aggregate_trace(
            sysm, n, tpn, AggregateTraceConfig(calls_per_loop=64, compute_between_us=0.0)
        )
        cfg = sysm.config
        model = AllreduceSeriesModel(cfg, n, tpn, seed=0)
        mod = model.run_series(64)
        # Same configs, same collective schedule: medians within 40%
        # (the DES carries dispatch/context mechanics the model abstracts).
        assert mod.median_us == pytest.approx(des.median_us, rel=0.4)

    def test_noise_hurts_both_in_same_direction(self):
        n, tpn = 16, 8
        noise = scale_noise(standard_noise(include_cron=False), 30.0)
        quiet_sys = build_system()
        noisy_sys = build_system(noise=noise)
        atc = AggregateTraceConfig(calls_per_loop=150, compute_between_us=200.0)
        des_quiet = run_aggregate_trace(quiet_sys, n, tpn, atc)
        des_noisy = run_aggregate_trace(noisy_sys, n, tpn, atc)
        assert des_noisy.mean_us > des_quiet.mean_us

        quiet_cfg = quiet_sys.config
        noisy_cfg = noisy_sys.config
        m_quiet = AllreduceSeriesModel(quiet_cfg, n, tpn, seed=1).run_series(150, 200.0)
        m_noisy = AllreduceSeriesModel(noisy_cfg, n, tpn, seed=1).run_series(150, 200.0)
        assert m_noisy.mean_us > m_quiet.mean_us


class TestHeadlineMechanismsAtDesScale:
    """The paper's findings, reproduced in the event-level simulator."""

    NOISE_SCALE = 30.0

    def _noise(self):
        return scale_noise(standard_noise(include_cron=False), self.NOISE_SCALE)

    def test_noise_creates_tail(self):
        sysm = build_system(noise=self._noise())
        res = run_aggregate_trace(
            sysm, 16, 8, AggregateTraceConfig(calls_per_loop=300, compute_between_us=200.0)
        )
        assert res.max_us > 3 * res.median_us

    def test_spare_cpu_absorbs_daemons(self):
        """15-per-node analogue: 7/8 occupancy kills the daemon tail."""
        atc = AggregateTraceConfig(calls_per_loop=300, compute_between_us=200.0)
        full = run_aggregate_trace(build_system(noise=self._noise()), 16, 8, atc)
        spare = run_aggregate_trace(build_system(noise=self._noise()), 14, 7, atc)
        assert spare.max_us < full.max_us

    def test_prototype_plus_cosched_beats_vanilla(self):
        atc = AggregateTraceConfig(calls_per_loop=400, compute_between_us=200.0)
        vanilla = run_aggregate_trace(build_system(noise=self._noise()), 16, 8, atc)
        proto = run_aggregate_trace(
            build_system(
                noise=self._noise(),
                kernel=KernelConfig.prototype(big_tick=2),
                cosched=CoschedConfig(
                    enabled=True, period_us=s(5) / self.NOISE_SCALE, duty_cycle=0.9
                ),
            ),
            16,
            8,
            atc,
        )
        assert proto.mean_us < vanilla.mean_us
        assert proto.max_us < vanilla.max_us

    def test_timer_threads_create_interference(self):
        atc = AggregateTraceConfig(calls_per_loop=200, compute_between_us=200.0)
        with_timers = run_aggregate_trace(
            build_system(mpi=MpiConfig(progress_interval_us=ms(20))), 16, 8, atc
        )
        without = run_aggregate_trace(
            build_system(mpi=MpiConfig.with_long_polling()), 16, 8, atc
        )
        assert with_timers.mean_us > without.mean_us

    def test_values_stay_correct_under_heavy_noise(self):
        """Interference must never corrupt the reduction semantics."""
        noise = scale_noise(standard_noise(include_cron=False), 100.0)
        res = run_aggregate_trace(
            build_system(noise=noise),
            16,
            8,
            AggregateTraceConfig(calls_per_loop=100, compute_between_us=100.0),
        )
        assert res.values_ok

    def test_big_ticks_reduce_tick_overhead(self):
        """§3.1.1: 25x fewer tick interrupts -> measurably less overhead
        on a pure-compute workload."""
        def run(kernel):
            sysm = build_system(n_nodes=1, cpn=2, kernel=kernel)
            job = sysm.launch(2, 2, lambda rank, api: api.compute(s(2)))
            return job.run(horizon_us=s(10))

        vanilla = run(KernelConfig())
        bigtick = run(KernelConfig(big_tick_multiplier=25))
        assert bigtick < vanilla

    def test_reproducibility_end_to_end(self):
        atc = AggregateTraceConfig(calls_per_loop=100, compute_between_us=150.0)
        a = run_aggregate_trace(build_system(noise=self._noise(), seed=11), 8, 4, atc)
        b = run_aggregate_trace(build_system(noise=self._noise(), seed=11), 8, 4, atc)
        assert np.array_equal(a.durations_us, b.durations_us)
        c = run_aggregate_trace(build_system(noise=self._noise(), seed=12), 8, 4, atc)
        assert not np.array_equal(a.durations_us, c.durations_us)


class TestSystemBuilder:
    def test_launch_with_cosched_config(self):
        sysm = build_system(
            kernel=KernelConfig.prototype(big_tick=2),
            cosched=CoschedConfig(enabled=True, period_us=ms(200)),
        )
        job = sysm.launch(8, 4, lambda rank, api: api.compute(ms(500)))
        assert len(sysm.coscheds) == 1
        job.run(horizon_us=s(10))

    def test_io_services_wired(self):
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=4),
            mpi=MpiConfig(progress_threads_enabled=False),
        )
        sysm = System(cfg, with_io=True)
        assert len(sysm.io_services) == 2
        job = sysm.launch(8, 4, lambda rank, api: api.io_request(1000))
        job.run(horizon_us=s(10))
        assert sysm.io_services[0].completed == 4
        assert sysm.io_services[1].completed == 4

    def test_daemons_installed_from_config(self):
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=4),
            noise=standard_noise(),
        )
        sysm = System(cfg)
        assert len(sysm.daemons) > 10
