"""Mean-field fast path: the oracle discipline and its guardrails.

``batch=1`` must be *bit-identical* to the exact engine — not close, not
statistically indistinguishable: the same digest.  That is what lets the
fast path be validated rather than trusted.  Beyond that, the knobs:
exempt nodes stay exact, heavy daemons are derated so no wake clumps
more than ``max_block_us`` of expected service, and batching never
changes *how many* activations happen — only how they are delivered.
"""

import pytest

from repro.config import DaemonSpec
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import VANILLA16, make_config
from repro.rng import Constant, Exponential
from repro.sim.meanfield import MeanFieldConfig
from repro.sim.parallel import run_parallel
from repro.units import ms, s, us

APP = "repro.apps.aggregate_trace:sharded_app"


def run_one(meanfield, seed=11):
    noise = scale_noise(standard_noise(include_cron=False), 400)
    config = make_config(VANILLA16, n_ranks=64, noise=noise, seed=seed)
    return run_parallel(
        config,
        n_ranks=64,
        tasks_per_node=16,
        app=APP,
        app_params=dict(
            loops=1, calls_per_loop=4, trace_block=64,
            compute_between_us=500.0, payload_bytes=8, record_nodes=(0,),
        ),
        shards=1,
        horizon_us=s(600),
        meanfield=meanfield,
        use_processes=False,
    )


class TestOracle:
    def test_batch_1_is_bit_identical(self):
        exact = run_one(None)
        batch1 = run_one(MeanFieldConfig(batch=1))
        assert batch1.digest == exact.digest
        assert batch1.events_per_shard == exact.events_per_shard

    def test_batch_1_with_exempt_nodes_is_bit_identical(self):
        exact = run_one(None)
        mf = run_one(MeanFieldConfig(batch=1, exempt_nodes=(0, 2)))
        assert mf.digest == exact.digest

    def test_batching_changes_results_but_not_integrity(self):
        exact = run_one(None)
        mf = run_one(MeanFieldConfig(batch=16, exempt_nodes=(0,)))
        assert mf.ok
        assert mf.digest != exact.digest  # approximation, by design
        assert sum(mf.events_per_shard) < sum(exact.events_per_shard)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MeanFieldConfig(batch=0)
        with pytest.raises(ValueError):
            MeanFieldConfig(batch=2, exempt_nodes=(-1,))
        with pytest.raises(ValueError):
            MeanFieldConfig(batch=2, max_block_us=0.0)

    def test_exempt_node_is_exact(self):
        mf = MeanFieldConfig(batch=32, exempt_nodes=(0,))
        assert mf.batch_for(0) == 1
        assert mf.batch_for(1) == 32

    def test_derating_caps_heavy_daemons(self):
        """A 20 ms flush must not clump: 1000 us / 20 ms -> batch 1.
        A 30 us interrupt handler batches fully."""
        mf = MeanFieldConfig(batch=32, max_block_us=1000.0)
        heavy = DaemonSpec(
            name="syncdish", period_us=s(60), service=Constant(ms(20))
        )
        light = DaemonSpec(
            name="irq", period_us=ms(60), service=Constant(us(30)), per_cpu=True
        )
        assert mf.batch_for(5, heavy) == 1
        assert mf.batch_for(5, light) == 32

    def test_derating_counts_expected_pagefault_surcharge(self):
        mf = MeanFieldConfig(batch=64, max_block_us=1000.0)
        no_pf = DaemonSpec(
            name="a", period_us=ms(10), service=Exponential(us(100))
        )
        with_pf = DaemonSpec(
            name="b", period_us=ms(10), service=Exponential(us(100)),
            pagefault_prob=0.5, pagefault_cost_us=us(400),
        )
        assert mf.batch_for(1, no_pf) == 10
        assert mf.batch_for(1, with_pf) == 3  # E[svc] = 100 + 0.5*400 = 300


class TestActivationConservation:
    def test_batching_preserves_activation_counts(self):
        """Folding B activations into one wake changes delivery, never the
        number of activations the daemon performed by a given sim time."""
        from repro.system import System

        noise = scale_noise(standard_noise(include_cron=False), 400)
        config = make_config(VANILLA16, n_ranks=64, noise=noise, seed=3)

        def counts(meanfield):
            system = System(config, meanfield=meanfield)
            system.sim.run_until(ms(40))
            return {
                (h.spec.name, h.node, h.cpu): h.activations[0]
                for h in system.daemons
            }

        exact = counts(None)
        batched = counts(MeanFieldConfig(batch=8, exempt_nodes=(0,)))
        assert exact.keys() == batched.keys()
        # Exempt node identical; batched nodes conserve totals within one
        # batch's worth of bookkeeping skew (a wake mid-window may have
        # credited its whole batch already, or not yet).
        for key, n_exact in exact.items():
            _, node, _ = key
            if node == 0:
                assert batched[key] == n_exact
            else:
                assert abs(batched[key] - n_exact) <= 8
