"""The schedtune option surface and KernelConfig presets."""

import pytest

from repro.config import KernelConfig
from repro.kernel.schedtune import Schedtune
from repro.units import ms


class TestSchedtune:
    def test_set_and_commit(self):
        st = Schedtune()
        st.set("big_tick_multiplier", 25)
        st.set("tick_phase", "aligned")
        cfg = st.commit()
        assert cfg.big_tick_multiplier == 25
        assert cfg.tick_phase == "aligned"

    def test_unknown_option_rejected(self):
        with pytest.raises(KeyError):
            Schedtune().set("no_such_option", 1)

    def test_get_staged_then_base(self):
        st = Schedtune()
        assert st.get("big_tick_multiplier") == 1
        st.set("big_tick_multiplier", 10)
        assert st.get("big_tick_multiplier") == 10

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            Schedtune().get("bogus")

    def test_commit_validates_values(self):
        st = Schedtune()
        st.set("big_tick_multiplier", 0)
        with pytest.raises(ValueError):
            st.commit()

    def test_reset_clears_pending(self):
        st = Schedtune()
        st.set("big_tick_multiplier", 25)
        st.reset()
        assert st.commit() == KernelConfig()

    def test_set_many(self):
        st = Schedtune()
        st.set_many({"realtime_scheduling": True, "fix_multi_ipi": True})
        cfg = st.commit()
        assert cfg.realtime_scheduling and cfg.fix_multi_ipi

    def test_describe_paper_options(self):
        for opt in Schedtune.paper_options():
            assert Schedtune.describe(opt)
        assert Schedtune.describe("context_switch_us") == ""

    def test_base_config_preserved(self):
        base = KernelConfig(tick_cost_us=99.0)
        st = Schedtune(base)
        st.set("big_tick_multiplier", 5)
        assert st.commit().tick_cost_us == 99.0


class TestKernelConfigPresets:
    def test_vanilla_defaults(self):
        v = KernelConfig.vanilla()
        assert v.big_tick_multiplier == 1
        assert v.tick_phase == "staggered"
        assert not v.realtime_scheduling
        assert not v.daemons_global_queue

    def test_prototype_flips_everything(self):
        p = KernelConfig.prototype()
        assert p.big_tick_multiplier == 25
        assert p.tick_phase == "aligned"
        assert p.align_ticks_to_global_time
        assert p.realtime_scheduling
        assert p.fix_reverse_preemption
        assert p.fix_multi_ipi
        assert p.daemons_global_queue

    def test_prototype_physical_tick(self):
        p = KernelConfig.prototype()
        assert p.physical_tick_period_us == pytest.approx(ms(250))
        assert p.physical_tick_cost_us > p.tick_cost_us

    def test_vanilla_physical_cost_is_base(self):
        v = KernelConfig.vanilla()
        assert v.physical_tick_cost_us == v.tick_cost_us

    def test_with_options_returns_new(self):
        v = KernelConfig.vanilla()
        w = v.with_options(big_tick_multiplier=2)
        assert v.big_tick_multiplier == 1
        assert w.big_tick_multiplier == 2

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            KernelConfig(big_tick_multiplier=0)
        with pytest.raises(ValueError):
            KernelConfig(tick_phase="diagonal")
        with pytest.raises(ValueError):
            KernelConfig(global_queue_penalty=2.0)
        with pytest.raises(ValueError):
            KernelConfig(tick_period_us=0.0)
