"""Conservative parallel DES: shard-count invariance is the contract.

The whole point of :mod:`repro.sim.parallel` is that sharding is an
*execution strategy*, not a model change: the rank-visible outcome of a
run — per-call Allreduce durations of the recorded ranks, reduction
integrity, makespan — must be byte-identical whether the cluster's nodes
are simulated in one process or split across N.  These tests hold that
contract on randomized small clusters (including cancel-heavy blocking
waits, co-scheduling, the lottery policy's per-node RNG streams, and
deterministic fault schedules), plus the unit-level pieces it rests on:
the half-open ``run_until_before`` window, the block partition, and the
creation-order independence of named RNG streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    CoschedConfig,
    CoschedFaultSpec,
    FaultConfig,
    NodeFaultSpec,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import VANILLA16, make_config
from repro.rng import StreamFactory
from repro.sim.core import Simulator
from repro.sim.parallel import run_parallel, validate_sharded_config
from repro.sim.shard import ShardPlan
from repro.units import ms, s

APP = "repro.apps.aggregate_trace:sharded_app"


def small_config(seed=7, time_factor=400, **overrides):
    """A 4-node, 64-rank cluster with compressed noise — big enough to
    cross shard boundaries on every Allreduce, small enough to sweep."""
    noise = scale_noise(standard_noise(include_cron=False), time_factor)
    cfg = make_config(VANILLA16, n_ranks=64, noise=noise, seed=seed)
    return cfg.replace(**overrides) if overrides else cfg


def run_shards(config, shards, params=None, meanfield=None, use_processes=False):
    return run_parallel(
        config,
        n_ranks=64,
        tasks_per_node=16,
        app=APP,
        app_params=params
        or dict(loops=1, calls_per_loop=4, trace_block=64,
                compute_between_us=500.0, payload_bytes=8, record_nodes=(0,)),
        shards=shards,
        horizon_us=s(600),
        meanfield=meanfield,
        use_processes=use_processes,
    )


# ---------------------------------------------------------------------------
# ShardPlan: the block partition
# ---------------------------------------------------------------------------

class TestShardPlan:
    @given(n_nodes=st.integers(1, 64), n_shards=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_partition_is_exact(self, n_nodes, n_shards):
        if n_shards > n_nodes:
            with pytest.raises(ValueError):
                ShardPlan(n_nodes, n_shards)
            return
        plan = ShardPlan(n_nodes, n_shards)
        seen = []
        for shard in range(n_shards):
            nodes = list(plan.nodes_of(shard))
            assert nodes, "every shard owns at least one node"
            for n in nodes:
                assert plan.shard_of(n) == shard
            seen.extend(nodes)
        assert seen == list(range(n_nodes))

    @given(n_nodes=st.integers(2, 64), n_shards=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_balance(self, n_nodes, n_shards):
        if n_shards > n_nodes:
            return
        plan = ShardPlan(n_nodes, n_shards)
        sizes = [len(plan.nodes_of(sh)) for sh in range(n_shards)]
        assert max(sizes) - min(sizes) <= 1

    @given(
        n_nodes=st.integers(1, 64),
        n_shards=st.integers(1, 16),
        job_frac=st.floats(0.0, 1.0),
        tpn=st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_for_placement_is_exact_partition(
        self, n_nodes, n_shards, job_frac, tpn
    ):
        if n_shards > n_nodes:
            return
        job_nodes = round(job_frac * n_nodes)
        plan = ShardPlan.for_placement(n_nodes, n_shards, job_nodes, tpn)
        seen = []
        for shard in range(n_shards):
            nodes = list(plan.nodes_of(shard))
            assert nodes, "every shard owns at least one node"
            for n in nodes:
                assert plan.shard_of(n) == shard
            seen.extend(nodes)
        assert seen == list(range(n_nodes))

    @given(n_nodes=st.integers(2, 64), n_shards=st.integers(2, 8),
           tpn=st.integers(2, 32))
    @settings(max_examples=40, deadline=None)
    def test_for_placement_weight_balance(self, n_nodes, n_shards, tpn):
        """With every node hosting ranks, each cut lands within one node's
        weight of its ideal k/S split point."""
        if n_shards > n_nodes:
            return
        plan = ShardPlan.for_placement(n_nodes, n_shards, n_nodes, tpn)
        total = n_nodes * tpn
        for k in range(1, n_shards):
            assert abs(plan.boundaries[k] * tpn - k * total / n_shards) <= tpn

    def test_for_placement_splits_busy_head(self):
        """8 nodes, job on the first 2: the legacy node-count plan puts
        both busy nodes on shard 0; the placement plan cuts between them
        so each shard carries half the ranks."""
        plan = ShardPlan.for_placement(8, 2, job_nodes=2, tasks_per_node=16)
        assert plan.boundaries == (0, 1, 8)
        assert plan.shard_of(0) != plan.shard_of(1)
        legacy = ShardPlan(8, 2)
        assert legacy.shard_of(0) == legacy.shard_of(1)


# ---------------------------------------------------------------------------
# Simulator.run_until_before: the half-open superstep window
# ---------------------------------------------------------------------------

class TestRunUntilBefore:
    def test_strict_bound(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0, 3.0, 4.0):
            sim.schedule_at(t, fired.append, t)
        sim.run_until_before(3.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 3.0
        # The events AT the bound are still pending and fire next window.
        sim.run_until_before(5.0)
        assert fired == [1.0, 2.0, 3.0, 3.0, 4.0]

    def test_clock_advances_even_when_idle(self):
        sim = Simulator()
        sim.run_until_before(10.0)
        assert sim.now == 10.0


# ---------------------------------------------------------------------------
# Shard-count invariance (the tentpole contract)
# ---------------------------------------------------------------------------

class TestShardEquivalence:
    def _digests(self, config, params=None, shard_counts=(1, 2, 4)):
        runs = [run_shards(config, n, params=params) for n in shard_counts]
        base = runs[0]
        for r in runs[1:]:
            assert r.digest == base.digest, (
                f"shards={r.shards} diverged from shards={base.shards}"
            )
            for k in base.ranks:
                assert np.array_equal(base.ranks[k], r.ranks[k])
        return base

    def test_basic_equivalence(self):
        base = self._digests(small_config())
        assert base.ok

    @given(
        seed=st.integers(0, 2**16),
        wait_mode=st.sampled_from(["poll", "block"]),
        cosched=st.booleans(),
        policy=st.sampled_from(["aix", "lottery"]),
        calls=st.integers(2, 5),
        compute_us=st.sampled_from([200.0, 800.0]),
    )
    @settings(max_examples=10, deadline=None)
    def test_randomized_equivalence(
        self, seed, wait_mode, cosched, policy, calls, compute_us
    ):
        cfg = small_config(seed=seed)
        cfg = cfg.replace(
            mpi=cfg.mpi.__class__(wait_mode=wait_mode),
            kernel=cfg.kernel.with_options(policy=policy),
            cosched=CoschedConfig(
                enabled=cosched, period_us=ms(50), duty_cycle=0.9
            ),
        )
        params = dict(
            loops=1, calls_per_loop=calls, trace_block=64,
            compute_between_us=compute_us, payload_bytes=8, record_nodes=(0,),
        )
        self._digests(cfg, params=params)

    def test_fault_schedule_equivalence(self):
        """Deterministic faults — a crash, a slowdown, a dead co-scheduler
        — land on whichever shard owns the node; outcome is unchanged."""
        cfg = small_config(
            cosched=CoschedConfig(enabled=True, period_us=ms(50), duty_cycle=0.9),
            faults=FaultConfig(
                enabled=True,
                node_faults=(
                    NodeFaultSpec(node=1, at_us=ms(5), duration_us=ms(3), kind="crash"),
                    NodeFaultSpec(
                        node=2, at_us=ms(2), duration_us=ms(10),
                        kind="slowdown", fraction=0.5,
                    ),
                ),
                cosched_faults=(
                    CoschedFaultSpec(node=3, at_us=ms(1), kind="die"),
                ),
                retransmit_enabled=False,
                watchdog_enabled=False,
            ),
        )
        self._digests(cfg, shard_counts=(1, 4))

    def test_meanfield_composes_with_sharding(self):
        """Batching is a per-node decision, so it too is shard-invariant."""
        from repro.sim.meanfield import MeanFieldConfig

        cfg = small_config()
        mf = MeanFieldConfig(batch=8, exempt_nodes=(0,))
        a = run_shards(cfg, 1, meanfield=mf)
        b = run_shards(cfg, 2, meanfield=mf)
        assert a.digest == b.digest

    def test_real_subprocess_workers(self):
        """The in-process and forked-worker drivers are the same model."""
        cfg = small_config()
        inproc = run_shards(cfg, 2, use_processes=False)
        forked = run_shards(cfg, 2, use_processes=True)
        assert inproc.digest == forked.digest
        assert inproc.events_per_shard == forked.events_per_shard


# ---------------------------------------------------------------------------
# Stochastic faults + resilience under sharding (this PR's tentpole)
# ---------------------------------------------------------------------------

def chaos_faults(**overrides):
    """Every fault knob at once: the configuration sharded mode used to
    reject wholesale and must now reproduce byte-for-byte."""
    kw = dict(
        enabled=True,
        msg_drop_prob=0.05,
        msg_dup_prob=0.05,
        msg_delay_prob=0.05,
        msg_delay_us=200.0,
        pipe_loss_prob=0.3,
        timesync_loss_at_us=ms(6),
        retransmit_enabled=True,
        retransmit_timeout_us=ms(1),
        retransmit_max_timeout_us=ms(8),
        watchdog_enabled=True,
        watchdog_interval_us=ms(5),
    )
    kw.update(overrides)
    return FaultConfig(**kw)


class TestFaultEquivalence:
    """Drop/dup/delay, pipe loss, timesync loss, retransmit, and the
    watchdog all draw from per-link / per-node streams now — the full
    fault plane is an execution-strategy-independent part of the model."""

    def test_full_fault_stack_equivalence(self):
        cfg = small_config(
            cosched=CoschedConfig(enabled=True, period_us=ms(50), duty_cycle=0.9),
            faults=chaos_faults(),
        )
        runs = [run_shards(cfg, n) for n in (1, 2, 4)]
        base = runs[0]
        assert base.ok
        # Faults actually fired — this is not a vacuous pass.
        assert base.counters["net_drops"] > 0
        assert base.counters["retransmits"] > 0
        assert base.counters["pipe_losses"] > 0
        assert base.counters["degradation_events"] > 0
        for r in runs[1:]:
            assert r.digest == base.digest
            # Fault bookkeeping is also shard-count invariant when summed.
            assert r.counters == base.counters

    def test_full_fault_stack_forked_workers(self):
        cfg = small_config(faults=chaos_faults())
        inproc = run_shards(cfg, 2, use_processes=False)
        forked = run_shards(cfg, 2, use_processes=True)
        assert inproc.digest == forked.digest
        assert inproc.counters == forked.counters

    @given(
        seed=st.integers(0, 2**16),
        drop=st.floats(0.0, 0.15),
        dup=st.floats(0.0, 0.15),
        delay=st.floats(0.0, 0.15),
        pipe=st.floats(0.0, 0.4),
    )
    @settings(max_examples=6, deadline=None)
    def test_randomized_fault_equivalence(self, seed, drop, dup, delay, pipe):
        cfg = small_config(
            seed=seed,
            faults=chaos_faults(
                msg_drop_prob=drop,
                msg_dup_prob=dup,
                msg_delay_prob=delay,
                pipe_loss_prob=pipe,
            ),
        )
        params = dict(
            loops=1, calls_per_loop=3, trace_block=64,
            compute_between_us=400.0, payload_bytes=8, record_nodes=(0,),
        )
        a = run_shards(cfg, 1, params=params)
        b = run_shards(cfg, 2, params=params)
        assert a.digest == b.digest
        assert a.counters == b.counters


# ---------------------------------------------------------------------------
# Adaptive lookahead: window tracks the current minimum cross-node latency
# ---------------------------------------------------------------------------

class TestAdaptiveLookahead:
    def test_latency_change_mid_run(self):
        """Dropping the wire latency mid-run shrinks the conservative
        window (more supersteps, smaller reported lookahead) without
        moving the result — and genuinely changes the model vs. the base
        latency, so the adaptation is observable on both axes."""
        import dataclasses

        from repro.units import us

        base_cfg = small_config()
        cfg = base_cfg.replace(
            network=dataclasses.replace(
                base_cfg.network, latency_changes=((ms(3), us(6)),)
            )
        )
        runs = [run_shards(cfg, n) for n in (1, 2, 4)]
        assert runs[0].ok
        for r in runs[1:]:
            assert r.digest == runs[0].digest
        # Post-change latency governs the floor the coordinator reports.
        assert runs[1].lookahead_us == us(6)
        plain = run_shards(base_cfg, 2)
        assert runs[1].supersteps > plain.supersteps
        assert runs[1].digest != plain.digest  # the change is a model change


# ---------------------------------------------------------------------------
# Shard-stable RNG streams (the naming contract the equivalence rests on)
# ---------------------------------------------------------------------------

class TestStreamStability:
    def test_streams_independent_of_creation_order(self):
        """A shard creates only its own nodes' streams, in its own order;
        draws must match the serial run, which creates all of them."""
        serial = StreamFactory(seed=42)
        all_streams = {
            name: serial.stream(name).uniform(size=4)
            for name in (
                "kernel.lottery.n0", "kernel.lottery.n3",
                "daemon.mld.n2.c0", "daemon.mld.phase",
            )
        }
        shard = StreamFactory(seed=42)
        # Reverse order, with unrelated interleaved creations.
        shard.stream("daemon.other.n9.c1")
        late = shard.stream("daemon.mld.n2.c0").uniform(size=4)
        shard.stream("kernel.lottery.n1")
        assert np.array_equal(late, all_streams["daemon.mld.n2.c0"])
        assert np.array_equal(
            shard.stream("kernel.lottery.n3").uniform(size=4),
            all_streams["kernel.lottery.n3"],
        )


# ---------------------------------------------------------------------------
# Checkpoint integration: the router's state is part of the snapshot
# ---------------------------------------------------------------------------

class TestSnapshot:
    def test_shard_router_state_in_snapshot(self):
        from repro.checkpoint import capture_state
        from repro.system import System

        cfg = small_config()
        plan = ShardPlan(cfg.machine.n_nodes, 2)
        system = System(cfg, shard=(1, plan))
        state = capture_state(system)
        shard = state["cluster"]["shard"]
        assert shard["shard_id"] == 1
        assert shard["n_shards"] == 2
        assert shard["outbox"] == []

    def test_serial_snapshot_has_no_shard_section(self):
        from repro.checkpoint import capture_state
        from repro.system import System

        state = capture_state(System(small_config()))
        assert state["cluster"]["shard"] is None


# ---------------------------------------------------------------------------
# Config validation: what sharding refuses to pretend it can do
# ---------------------------------------------------------------------------

class TestValidation:
    def test_serial_always_allowed(self):
        validate_sharded_config(small_config(), 1)

    def test_hardware_allreduce_rejected(self):
        cfg = small_config()
        cfg = cfg.replace(mpi=cfg.mpi.__class__(algorithm="hardware"))
        with pytest.raises(ValueError, match="hardware"):
            validate_sharded_config(cfg, 2)

    def test_stochastic_net_faults_accepted(self):
        """Per-link fault streams made stochastic faults shard-stable —
        they are no longer rejected."""
        cfg = small_config(
            faults=FaultConfig(enabled=True, msg_drop_prob=0.01)
        )
        validate_sharded_config(cfg, 2)

    def test_retransmit_accepted(self):
        """Acks ride the envelope router now, so retransmit shards."""
        cfg = small_config(
            faults=FaultConfig(enabled=True, retransmit_enabled=True)
        )
        validate_sharded_config(cfg, 2)

    def test_timesync_loss_accepted(self):
        cfg = small_config(
            faults=FaultConfig(enabled=True, timesync_loss_at_us=ms(3))
        )
        validate_sharded_config(cfg, 2)

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ValueError):
            validate_sharded_config(small_config(), 5)
