"""Invariant monitor: a clean system passes, and each corruption class is
caught by the check named for it.

Corruptions are injected by mutating live scheduler/transport state
directly — the monitor must find planted bugs, not just bless healthy
runs.
"""

import pytest

from repro.checkpoint import (
    InvariantError,
    InvariantMonitor,
    capture_state,
    state_fingerprint,
)
from repro.config import NetworkConfig
from repro.mpi.messages import Message, ReliableTransport
from repro.net.fabric import Fabric
from repro.sim.core import Simulator
from repro.units import ms

from tests.test_checkpoint import build_mini, drive


def checked(system):
    return InvariantMonitor(system).check()


def violations(system, check):
    return [v for v in checked(system).violations if v.check == check]


class TestCleanSystem:
    def test_mid_run_system_is_clean(self):
        d = build_mini(faults=False)
        drive(d, ms(150))
        report = checked(d.system)
        assert report.ok, report.summary()
        assert report.checks_run == 6

    def test_faulted_system_is_clean(self):
        """Node crash + message drops stress the transport and watchdog
        paths; the invariants must still hold at every boundary."""
        d = build_mini(faults=True)
        for stop in (ms(40), ms(80), ms(150), ms(250)):
            drive(d, stop, start=d.system.sim.now)
            report = checked(d.system)
            assert report.ok, report.summary()

    def test_check_or_raise_passes_clean(self):
        d = build_mini()
        drive(d, ms(50))
        InvariantMonitor(d.system).check_or_raise()


class TestSanitizer:
    def test_sanitized_run_is_bit_identical(self):
        plain = build_mini()
        drive(plain, ms(150))
        fp_plain = state_fingerprint(capture_state(plain.system))

        watched = build_mini()
        mon = InvariantMonitor(watched.system)
        mon.install_sanitizer()
        drive(watched, ms(150))
        mon.uninstall()
        assert watched.system.sim.events_processed == plain.system.sim.events_processed
        assert state_fingerprint(capture_state(watched.system)) == fp_plain

    def test_sanitizer_catches_past_event(self):
        d = build_mini()
        drive(d, ms(50))
        mon = InvariantMonitor(d.system)
        mon.install_sanitizer()
        ev = d.system.sim.schedule(ms(5), lambda: None)
        ev.time = d.system.sim.now - ms(1)  # plant a past-dated event
        with pytest.raises(InvariantError, match="heap.monotonic"):
            d.system.sim.run_until(d.system.sim.now + ms(10))


class TestCorruptions:
    """Each planted bug is flagged by exactly the check built for it."""

    def test_thread_on_two_runqueues(self):
        from repro.kernel.thread import ThreadState

        d = build_mini()
        drive(d, ms(50))
        sched = d.system.cluster.nodes[0].scheduler
        t = sched.threads[0]
        # Plant the bug: enqueue the same thread on two distinct queues
        # (clearing the backlink between pushes, as a double-enqueue bug
        # inside the scheduler effectively would).
        sched.local_queues[0].push(t)
        t.rq_entry = None
        sched.local_queues[1].push(t)
        t.state = ThreadState.READY
        t.cpu = None
        assert violations(d.system, "runqueue.unique")

    def test_cpu_busy_beyond_elapsed(self):
        d = build_mini()
        drive(d, ms(50))
        d.system.cluster.nodes[0].scheduler.cpus[0].busy_us = 1e12
        assert violations(d.system, "cputime.cpu")

    def test_thread_cpu_time_beyond_elapsed(self):
        d = build_mini()
        drive(d, ms(50))
        t = d.system.cluster.nodes[0].scheduler.threads[0]
        t.stats.cpu_time_us = 1e12
        assert violations(d.system, "cputime.thread")

    def test_event_scheduled_in_the_past(self):
        d = build_mini()
        drive(d, ms(50))
        ev = d.system.sim.schedule(ms(5), lambda: None)
        ev.time = -1.0
        assert violations(d.system, "heap.monotonic")

    def test_running_thread_without_cpu(self):
        d = build_mini()
        drive(d, ms(50))
        sched = d.system.cluster.nodes[0].scheduler
        t = next(t for t in sched.threads if t.cpu is not None)
        sched.cpus[t.cpu].thread = None
        assert violations(d.system, "thread.running")

    def test_transport_attempt_and_backoff_overrun(self):
        d = build_mini(faults=True)  # faults enable the reliable transport
        drive(d, ms(100))
        rel = d.system.jobs[0].world.reliability
        assert rel is not None
        msg = Message(src=0, dst=1, tag=1, payload=None, nbytes=8)
        seq = rel._next_seq.get(0, 0)
        rel._next_seq[0] = seq + 1
        rel._inflight[(0, seq)] = [
            0, 1, msg, rel.max_attempts + 3, rel.max_timeout_us * 4.0, None,
        ]
        assert violations(d.system, "transport.attempts")
        assert violations(d.system, "transport.backoff")

    def test_transport_lost_sequence_number(self):
        d = build_mini(faults=True)
        drive(d, ms(100))
        rel = d.system.jobs[0].world.reliability
        # A seq that is neither in-flight nor delivered.
        rel._next_seq[0] = rel._next_seq.get(0, 0) + 1
        assert violations(d.system, "transport.complete")

    def test_cosched_heartbeat_from_the_future(self):
        d = build_mini()
        drive(d, ms(50))
        nc = next(iter(d.system.coscheds[0].node_coscheds.values()))
        nc.heartbeat = d.system.sim.now + 1e6
        assert violations(d.system, "cosched.heartbeat")

    def test_cosched_priority_outside_window(self):
        d = build_mini()
        drive(d, ms(50))
        jc = d.system.coscheds[0]
        nc = next(
            nc for nc in jc.node_coscheds.values()
            if nc.window != "idle" and nc.tasks
        )
        nc.tasks[0].priority = 99
        assert violations(d.system, "cosched.priority")


class TestTransportStandalone:
    def test_clean_transport_has_consistent_sequence_space(self):
        sim = Simulator()
        fabric = Fabric(sim, NetworkConfig())
        delivered = []
        rel = ReliableTransport(
            sim, fabric, lambda m: delivered.append(m),
            timeout_us=10.0, backoff=2.0, max_timeout_us=40.0, max_attempts=4,
        )
        for i in range(5):
            rel.send(0, 1, Message(src=0, dst=1, tag=i, payload=i, nbytes=8))
        sim.run(max_events=10_000)
        assert len(delivered) == 5
        assert rel._delivered == {(0, i) for i in range(5)}
        assert not rel._inflight
