"""Collective algorithms: correctness across sizes, ops and algorithms.

Correctness here is load-bearing: every benchmark result rests on these
schedules actually computing the reduction while the scheduler interleaves
them arbitrarily.
"""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, MachineConfig, MpiConfig
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import s


def run_collective(n_ranks, body_factory, algorithm="recursive_doubling", tpn=None, seed=0):
    tpn = tpn if tpn is not None else min(4, n_ranks)
    n_nodes = -(-n_ranks // tpn)
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=tpn),
        mpi=MpiConfig(progress_threads_enabled=False, algorithm=algorithm),
        seed=seed,
    )
    cluster = Cluster(cfg)
    job = MpiJob(cluster, cluster.place(n_ranks, tpn), body_factory, config=cfg.mpi)
    job.run(horizon_us=s(60))
    return job


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 12, 16, 17])
    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "binomial"])
    def test_sum_all_sizes(self, n, algorithm):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(float(rank))

        run_collective(n, body, algorithm=algorithm)
        expected = float(sum(range(n)))
        assert results == {r: expected for r in range(n)}

    def test_max_op(self):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(float(rank), op=max)

        run_collective(6, body)
        assert set(results.values()) == {5.0}

    def test_min_op(self):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(float(rank) + 3.0, op=min)

        run_collective(5, body)
        assert set(results.values()) == {3.0}

    def test_single_rank_shortcut(self):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(42.0)

        run_collective(1, body)
        assert results == {0: 42.0}

    def test_consecutive_allreduces_do_not_cross(self):
        results = {}

        def body(rank, api):
            a = yield from api.allreduce(1.0)
            b = yield from api.allreduce(10.0)
            results[rank] = (a, b)

        run_collective(7, body)
        assert set(results.values()) == {(7.0, 70.0)}

    def test_takes_simulated_time(self):
        times = {}

        def body(rank, api):
            t0 = api.now
            yield from api.allreduce(1.0)
            times[rank] = api.now - t0

        run_collective(8, body)
        assert all(t > 0 for t in times.values())


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    def test_barrier_synchronises(self, n):
        """No rank may leave the barrier before the last rank arrives."""
        enter, leave = {}, {}

        def body(rank, api):
            yield from api.compute(100.0 * rank)  # staggered arrivals
            enter[rank] = api.now
            yield from api.barrier()
            leave[rank] = api.now

        run_collective(n, body)
        assert min(leave.values()) >= max(enter.values())

    def test_barrier_single_rank(self):
        def body(rank, api):
            yield from api.barrier()

        run_collective(1, body)


class TestAllgather:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 9])
    def test_gathers_all_values(self, n):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allgather(rank * 11)

        run_collective(n, body)
        expected = [r * 11 for r in range(n)]
        assert all(results[r] == expected for r in range(n))


class TestBcast:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 11, 16])
    def test_broadcast_from_root(self, n):
        results = {}

        def body(rank, api):
            value = "payload" if rank == 0 else None
            results[rank] = yield from api.bcast(value)

        run_collective(n, body)
        assert all(results[r] == "payload" for r in range(n))


class TestPropertyAllreduce:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=14),
        values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=14, max_size=14),
        algorithm=st.sampled_from(["recursive_doubling", "binomial"]),
    )
    def test_allreduce_sums_arbitrary_contributions(self, n, values, algorithm):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(values[rank], op=operator.add)

        run_collective(n, body, algorithm=algorithm, seed=n)
        expected = sum(values[:n])
        assert results == {r: expected for r in range(n)}

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=12), tpn=st.integers(min_value=1, max_value=4))
    def test_allreduce_any_placement(self, n, tpn):
        results = {}

        def body(rank, api):
            results[rank] = yield from api.allreduce(1.0)

        run_collective(n, body, tpn=min(tpn, n))
        assert set(results.values()) == {float(n)}
