"""Content-addressed result store: envelope integrity, fingerprints,
put/get semantics, fsck detection+repair, crash-safe GC, and the
runner/store memoization wiring."""

import json
import math

import pytest

from repro.checkpoint.harness import SweepJournal
from repro.experiments.common import PROTO16
from repro.experiments.runner import TrialRunner, TrialSpec, set_execution_defaults
from repro.results import canonical_dumps
from repro.store import (
    DeterminismViolation,
    IntegrityError,
    ResultStore,
    StoreError,
    decode_record,
    encode_record,
    spec_fingerprint,
)
from repro.store.fingerprint import fingerprint_payload


def _count_trial(params):
    """Deterministic trial that also bumps a module-level counter, so
    tests can assert how many trials actually *executed*."""
    _count_trial.calls += 1
    return {"twice": params["x"] * 2}


_count_trial.calls = 0


@pytest.fixture(autouse=True)
def _reset_counter():
    _count_trial.calls = 0


def _spec(key="k1", x=1):
    return TrialSpec(key, "tests.test_store:_count_trial", {"x": x})


class TestCanonicalDumps:
    def test_sorted_compact_deterministic(self):
        a = canonical_dumps({"b": 1, "a": [1, 2], "c": {"y": 2, "x": 1}})
        assert a == '{"a":[1,2],"b":1,"c":{"x":1,"y":2}}'
        assert canonical_dumps({"a": [1, 2], "c": {"x": 1, "y": 2}, "b": 1}) == a

    def test_nan_and_infinity_rejected_loudly(self):
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError, match="NaN/Infinity"):
                canonical_dumps({"v": bad})


class TestRecordEnvelope:
    def test_round_trip_and_byte_determinism(self):
        payload = {"fingerprint": "f", "key": "k", "status": "ok", "record": {"v": 1}}
        data = encode_record(payload)
        assert data == encode_record(dict(reversed(list(payload.items()))))
        decoded = decode_record(data)
        assert {k: decoded[k] for k in payload} == payload
        assert "sha256" in decoded

    def test_truncation_is_torn(self):
        data = encode_record({"v": 1})
        with pytest.raises(IntegrityError) as exc:
            decode_record(data[: len(data) // 2])
        assert exc.value.kind == "torn"

    def test_bit_flip_is_detected(self):
        data = bytearray(encode_record({"v": 12345}))
        i = len(data) // 2
        data[i] ^= 0x01
        with pytest.raises(IntegrityError) as exc:
            decode_record(bytes(data))
        assert exc.value.kind in ("torn", "checksum", "shape")

    def test_unchecksummed_json_is_wrong_shape(self):
        with pytest.raises(IntegrityError) as exc:
            decode_record(json.dumps({"v": 1}))
        assert exc.value.kind == "shape"
        with pytest.raises(IntegrityError) as exc:
            decode_record("[1, 2, 3]")
        assert exc.value.kind == "shape"

    def test_reserved_field_and_non_dict_rejected(self):
        with pytest.raises(ValueError, match="sha256"):
            encode_record({"sha256": "x"})
        with pytest.raises(TypeError):
            encode_record([1, 2])


class TestFingerprint:
    def test_pure_function_of_spec_and_version(self):
        assert spec_fingerprint(_spec()) == spec_fingerprint(_spec())
        assert spec_fingerprint(_spec(x=1)) != spec_fingerprint(_spec(x=2))
        assert spec_fingerprint(_spec(key="other")) != spec_fingerprint(_spec())
        assert spec_fingerprint(_spec(), version="v2") != spec_fingerprint(
            _spec(), version="v1"
        )

    def test_env_version_salts_the_fingerprint(self, monkeypatch):
        before = spec_fingerprint(_spec())
        monkeypatch.setenv("REPRO_CODE_VERSION", "deadbeef")
        assert spec_fingerprint(_spec()) != before

    def test_scenario_params_fingerprint(self):
        # Scenario carries an importable classmethod (kernel config
        # factory); the fallback encodes it by qualified name.
        spec = TrialSpec("s", "repro.experiments.common:_allreduce_trial",
                         {"scenario": PROTO16, "n_ranks": 4})
        payload = fingerprint_payload(spec, version="t")
        assert "__callable__" in json.dumps(payload)
        assert spec_fingerprint(spec, version="t") == spec_fingerprint(spec, version="t")

    def test_lambda_params_rejected(self):
        spec = TrialSpec("s", "m:f", {"fn": lambda: None})
        with pytest.raises(TypeError, match="no.*stable|stable.*identity"):
            spec_fingerprint(spec)


FP_A = "a" * 64
FP_B = "b" * 64


class TestResultStorePutGet:
    def test_round_trip_and_counters(self, tmp_path):
        s = ResultStore(tmp_path)
        assert s.put(FP_A, "k1", {"v": 1}) == "stored"
        assert s.get(FP_A) == {"v": 1}
        assert s.get(FP_B) is None
        assert (s.hits, s.misses, s.puts) == (1, 1, 1)

    def test_identical_concurrent_write_is_benign(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        assert s.put(FP_A, "k1", {"v": 1}) == "identical"
        assert s.puts == 1 and s.identical == 1

    def test_nonidentical_write_is_a_determinism_violation(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        with pytest.raises(DeterminismViolation, match="determinism violation"):
            s.put(FP_A, "k1", {"v": 2})
        assert s.get(FP_A) == {"v": 1}  # original record untouched

    def test_corrupt_record_is_quarantined_not_served(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        path = s.object_path(FP_A)
        path.write_bytes(path.read_bytes()[:30])
        assert s.get(FP_A) is None
        assert not path.exists()
        assert list(s.quarantine_dir.iterdir())

    def test_put_over_corrupt_carcass_self_heals(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        s.object_path(FP_A).write_bytes(b"garbage")
        assert s.put(FP_A, "k1", {"v": 1}) == "replaced-corrupt"
        assert s.get(FP_A) == {"v": 1}

    def test_bad_fingerprint_rejected(self, tmp_path):
        s = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="not a fingerprint"):
            s.put("xyz", "k", {})
        with pytest.raises(ValueError, match="not a fingerprint"):
            s.get("A" * 64)  # uppercase: also not canonical


class TestFsck:
    def _seeded(self, tmp_path):
        s = ResultStore(tmp_path / "store")
        s.put(FP_A, "k1", {"v": 1})
        s.put(FP_B, "k2", {"v": 2})
        return s

    def test_clean_store_is_clean(self, tmp_path):
        s = self._seeded(tmp_path)
        report = s.fsck()
        assert report.clean and report.checked == 2

    def test_detects_every_corruption_kind(self, tmp_path):
        s = self._seeded(tmp_path)
        # torn
        pa = s.object_path(FP_A)
        pa.write_bytes(pa.read_bytes()[:25])
        # valid envelope, wrong payload shape
        pb = s.object_path(FP_B)
        pb.write_bytes(encode_record({"not": "a record"}))
        # valid record stored at the wrong address
        fp_c = "c" * 64
        pc = s.object_path(fp_c)
        pc.parent.mkdir(parents=True, exist_ok=True)
        pc.write_bytes(encode_record(
            {"fingerprint": FP_A, "key": "k1", "status": "ok", "record": {"v": 1}}
        ))
        # stray tmp spill + corrupt index entry
        (s.objects_dir / "aa").mkdir(exist_ok=True)
        (s.objects_dir / "aa" / ".x.json.123.tmp").write_text("spill")
        (s.index_dir / "broken.json").write_text('{"kind": "ind')
        report = s.fsck()
        kinds = sorted(f.kind for f in report.findings)
        assert kinds == [
            "fingerprint-mismatch", "index-corrupt", "shape", "stray-tmp", "torn",
        ]
        assert all(f.action == "reported" for f in report.findings)

    def test_repair_restores_from_journal_byte_identically(self, tmp_path):
        s = self._seeded(tmp_path)
        journal = SweepJournal(tmp_path / "results")
        journal.record("k1", {"v": 1})
        original = s.object_path(FP_A).read_bytes()
        s.object_path(FP_A).write_bytes(original[:25])
        report = s.fsck(repair=True, journal_dirs=[journal.dir])
        assert report.repaired == 1 and report.resolved
        assert s.object_path(FP_A).read_bytes() == original
        assert s.fsck().clean

    def test_repair_without_journal_quarantines_and_converges(self, tmp_path):
        s = self._seeded(tmp_path)
        s.object_path(FP_A).write_bytes(b"junk")
        report = s.fsck(repair=True)
        assert not report.clean and report.resolved
        # Unrestorable record quarantined; its index entry now dangles
        # and is removed, so the next pass is clean.
        assert s.fsck().clean
        assert s.get(FP_B) == {"v": 2}  # untouched record still served

    def test_index_dangling_detected_and_removed(self, tmp_path):
        s = self._seeded(tmp_path)
        s.object_path(FP_A).unlink()
        report = s.fsck()
        assert [f.kind for f in report.findings] == ["index-dangling"]
        assert s.fsck(repair=True).resolved
        assert s.fsck().clean


class TestGc:
    def test_sweeps_dead_keeps_live(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        s.put(FP_B, "k2", {"v": 2})
        report = s.gc(live=[FP_A])
        assert report.kept == 1 and report.swept == 1
        assert s.get(FP_A) == {"v": 1}
        assert not s.object_path(FP_B).exists()
        assert not s.index_path("k2").exists()  # index pruned with it
        assert not s.gc_mark_path.exists()
        assert s.fsck().clean

    def test_dry_run_deletes_nothing(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        report = s.gc(live=[], dry_run=True)
        assert report.dead == [FP_A] and report.swept == 0
        assert s.object_path(FP_A).exists()

    def test_interrupted_sweep_resumes_idempotently(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        s.put(FP_B, "k2", {"v": 2})
        # Crash between mark and sweep: mark on disk, nothing deleted.
        from repro.store.store import _atomic_write_bytes

        _atomic_write_bytes(s.gc_mark_path, encode_record(
            {"kind": "gc-mark", "dead": [FP_B]}
        ))
        # A record put *after* the mark must survive the resumed sweep.
        fp_c = "c" * 64
        s.put(fp_c, "k3", {"v": 3})
        assert s.finish_gc() == 1
        assert s.finish_gc() == 0  # idempotent
        assert s.get(FP_A) == {"v": 1} and s.get(fp_c) == {"v": 3}
        assert not s.object_path(FP_B).exists()
        assert s.fsck().clean

    def test_fsck_detects_and_completes_interrupted_gc(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        from repro.store.store import _atomic_write_bytes

        _atomic_write_bytes(s.gc_mark_path, encode_record(
            {"kind": "gc-mark", "dead": [FP_A]}
        ))
        report = s.fsck()
        assert "interrupted-gc" in [f.kind for f in report.findings]
        assert s.fsck(repair=True).resolved
        assert not s.object_path(FP_A).exists() and s.fsck().clean

    def test_corrupt_mark_fails_loudly_and_repairs_leak_safe(self, tmp_path):
        s = ResultStore(tmp_path)
        s.put(FP_A, "k1", {"v": 1})
        s.gc_mark_path.parent.mkdir(parents=True, exist_ok=True)
        s.gc_mark_path.write_text('{"kind": "gc-ma')
        with pytest.raises(StoreError, match="fsck --repair"):
            s.gc(live=[FP_A])
        assert s.fsck(repair=True).resolved
        assert s.get(FP_A) == {"v": 1}  # unknown dead set: keep everything
        assert s.fsck().clean


class TestRunnerStoreIntegration:
    def test_warm_rerun_executes_zero_trials(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = [_spec(f"t{i}", i) for i in range(4)]
        cold = TrialRunner(store=store).run(specs)
        assert _count_trial.calls == 4 and store.puts == 4
        warm = TrialRunner(store=ResultStore(tmp_path / "store")).run(specs)
        assert _count_trial.calls == 4  # nothing executed
        assert all(o.cached for o in warm)
        assert [o.record for o in warm] == [o.record for o in cold]

    def test_store_hit_materialises_journal_byte_identically(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = [_spec("t0", 5)]
        TrialRunner(journal=SweepJournal(tmp_path / "cold"), store=store).run(specs)
        TrialRunner(journal=SweepJournal(tmp_path / "warm"), store=store).run(specs)
        cold = (tmp_path / "cold" / "journal" / "t0.json").read_bytes()
        warm = (tmp_path / "warm" / "journal" / "t0.json").read_bytes()
        assert cold == warm

    def test_journal_hit_backfills_the_store(self, tmp_path):
        journal = SweepJournal(tmp_path / "res")
        TrialRunner(journal=journal).run([_spec("t0", 3)])
        store = ResultStore(tmp_path / "store")
        outs = TrialRunner(journal=SweepJournal(tmp_path / "res"), store=store).run(
            [_spec("t0", 3)]
        )
        assert outs[0].cached and store.puts == 1
        assert store.get(spec_fingerprint(_spec("t0", 3))) == {"twice": 6}

    def test_no_cache_recomputes_but_still_writes_back(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        TrialRunner(store=store).run([_spec("t0", 2)])
        assert _count_trial.calls == 1
        s2 = ResultStore(tmp_path / "store")
        TrialRunner(store=s2, use_cache=False).run([_spec("t0", 2)])
        assert _count_trial.calls == 2  # recomputed despite warm store
        assert s2.hits == 0 and s2.identical == 1

    def test_result_drift_trips_the_determinism_oracle(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fp = spec_fingerprint(_spec("t0", 2))
        store.put(fp, "t0", {"twice": 999})  # a prior run's (wrong) record
        with pytest.raises(DeterminismViolation):
            TrialRunner(store=store, use_cache=False).run([_spec("t0", 2)])

    def test_parallel_backends_fill_the_store_identically(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial")
        pool_store = ResultStore(tmp_path / "pool")
        specs = [_spec(f"t{i}", i) for i in range(4)]
        TrialRunner(store=serial_store).run(specs)
        TrialRunner(jobs=2, store=pool_store).run(specs)
        serial = {fp: serial_store.object_path(fp).read_bytes()
                  for fp in serial_store.fingerprints()}
        parallel = {fp: pool_store.object_path(fp).read_bytes()
                    for fp in pool_store.fingerprints()}
        assert serial and serial == parallel

    def test_execution_defaults_route_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        previous = set_execution_defaults(store=store, use_cache=True)
        try:
            TrialRunner().run([_spec("t0", 1)])
            assert store.puts == 1
        finally:
            set_execution_defaults(
                backend=previous[0], supervisor=previous[1],
                store=previous[2], use_cache=previous[3],
            )


class TestStoreCli:
    def test_stats_fsck_gc_round_trip(self, tmp_path, capsys):
        from repro.store.cli import main

        store_dir = tmp_path / "store"
        s = ResultStore(store_dir)
        s.put(FP_A, "k1", {"v": 1})
        journal = SweepJournal(tmp_path / "res")
        journal.record("k1", {"v": 1})

        assert main(["stats", "--store", str(store_dir)]) == 0
        assert "records=1" in capsys.readouterr().out
        assert main(["fsck", "--store", str(store_dir)]) == 0

        s.object_path(FP_A).write_bytes(b"junk")
        assert main(["fsck", "--store", str(store_dir)]) == 1
        assert main([
            "fsck", "--store", str(store_dir),
            "--repair", "--journal", str(tmp_path / "res"),
        ]) == 0
        assert main(["fsck", "--store", str(store_dir)]) == 0

        # GC against the journal's live set keeps k1, sweeps strangers.
        ResultStore(store_dir).put(FP_B, "stranger", {"v": 2})
        (tmp_path / "res" / "journal" / "stranger.json").unlink(missing_ok=True)
        assert main([
            "gc", "--store", str(store_dir), "--live-from", str(tmp_path / "res"),
        ]) == 0
        s = ResultStore(store_dir)
        assert s.get(FP_A) == {"v": 1} and s.get(FP_B) is None

    def test_experiments_cli_delegates_store_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main as exp_main

        store_dir = tmp_path / "store"
        ResultStore(store_dir).put(FP_A, "k1", {"v": 1})
        assert exp_main(["store", "stats", "--store", str(store_dir)]) == 0
        assert "records=1" in capsys.readouterr().out

    def test_missing_store_dir_errors(self, tmp_path):
        from repro.store.cli import main

        with pytest.raises(SystemExit, match="does not exist"):
            main(["stats", "--store", str(tmp_path / "nope")])
