"""Cross-CPU preemption noticing: tick delay, IPIs, the paper's two fixes.

These tests pin the paper's §3 numbers: without the real-time scheduling
option a cross-CPU preemption waits for the target's next timer tick (up
to 10 ms); with it, an IPI lands in tenths of a millisecond; stock AIX
would not IPI on reverse preemption and kept only one IPI in flight.
"""

import pytest

from repro.config import KernelConfig
from repro.kernel.thread import Block, Compute, ThreadState
from repro.units import ms
from tests.conftest import make_harness


def kernel(**kw):
    base = dict(context_switch_us=0.0, tick_cost_us=0.0)
    base.update(kw)
    return KernelConfig(**base)


def wake_at(h, t, thread, value=None):
    h.sim.schedule_at(t, h.sched.wake, thread, value)


class TestTickNoticedPreemption:
    def _setup(self, h):
        """CPU 0 busy with a priority-60 hog; a priority-30 thread becomes
        ready mid-tick-interval via an external wake."""
        h.spawn(h.worker("hog", [ms(50)]), priority=60, cpu=0)

        def vip():
            yield Block()
            yield Compute(10.0)
            h.mark("vip")

        t = h.spawn(vip(), priority=30, cpu=0, allow_steal=False)
        return t

    def test_vanilla_waits_for_next_tick(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        t = self._setup(h)
        wake_at(h, 12_000.0, t)  # mid-interval; next boundary at 20 ms
        h.run(ms(100))
        (when,) = h.times("vip")
        assert when == pytest.approx(ms(20) + 10.0)

    def test_realtime_ipi_is_fast(self):
        h = make_harness(n_cpus=1, kernel=kernel(realtime_scheduling=True))
        t = self._setup(h)
        wake_at(h, 12_000.0, t)
        h.run(ms(100))
        (when,) = h.times("vip")
        assert when == pytest.approx(12_000.0 + h.config.ipi_latency_us + 10.0)

    def test_wake_on_boundary_preempts_immediately(self):
        """Quantised wakeups are processed in the target CPU's tick context."""
        h = make_harness(n_cpus=1, kernel=kernel())
        t = self._setup(h)
        wake_at(h, ms(20), t)  # exactly a boundary
        h.run(ms(100))
        (when,) = h.times("vip")
        assert when == pytest.approx(ms(20) + 10.0)


class TestReversePreemption:
    def _setup(self, h):
        """A 30 hog runs on CPU 0 while a 60 thread waits; lowering the
        hog's priority to 90 should hand the CPU over ("reverse
        pre-emption")."""
        hog = h.spawn(h.worker("hog", [ms(50)]), priority=30, cpu=0)

        def waiter():
            yield Compute(10.0)
            h.mark("waiter")

        h.spawn(waiter(), priority=60, cpu=0, allow_steal=False)
        return hog

    def test_without_fix_waits_for_tick(self):
        h = make_harness(n_cpus=1, kernel=kernel(realtime_scheduling=True))
        hog = self._setup(h)
        h.sim.schedule_at(12_000.0, h.sched.set_priority, hog, 90)
        h.run(ms(100))
        (when,) = h.times("waiter")
        assert when == pytest.approx(ms(20) + 10.0)

    def test_with_fix_ipis(self):
        h = make_harness(
            n_cpus=1,
            kernel=kernel(realtime_scheduling=True, fix_reverse_preemption=True),
        )
        hog = self._setup(h)
        h.sim.schedule_at(12_000.0, h.sched.set_priority, hog, 90)
        h.run(ms(100))
        (when,) = h.times("waiter")
        assert when == pytest.approx(12_000.0 + h.config.ipi_latency_us + 10.0)

    def test_fix_without_realtime_still_waits(self):
        """The reverse-preemption fix rides on the RT option being active."""
        h = make_harness(
            n_cpus=1,
            kernel=kernel(realtime_scheduling=False, fix_reverse_preemption=True),
        )
        hog = self._setup(h)
        h.sim.schedule_at(12_000.0, h.sched.set_priority, hog, 90)
        h.run(ms(100))
        (when,) = h.times("waiter")
        assert when == pytest.approx(ms(20) + 10.0)


class TestMultiIpi:
    def _setup_two(self, h):
        """Two busy CPUs; two better-priority threads wake simultaneously."""
        h.spawn(h.worker("hog0", [ms(50)]), priority=60, cpu=0)
        h.spawn(h.worker("hog1", [ms(50)]), priority=60, cpu=1)
        vips = []
        for i in range(2):
            def vip(i=i):
                yield Block()
                yield Compute(10.0)
                h.mark(f"vip{i}")

            vips.append(h.spawn(vip(), priority=30, cpu=i, allow_steal=False))
        return vips

    def test_stock_single_ipi_serialises(self):
        h = make_harness(n_cpus=2, kernel=kernel(realtime_scheduling=True))
        vips = self._setup_two(h)
        for v in vips:
            wake_at(h, 12_000.0, v)
        h.run(ms(100))
        t0 = h.times("vip0")[0]
        t1 = h.times("vip1")[0]
        # First preemption via IPI, second suppressed -> waits for a tick.
        assert min(t0, t1) == pytest.approx(12_000.0 + h.config.ipi_latency_us + 10.0)
        assert max(t0, t1) > ms(19)
        assert h.sched.ipis_suppressed >= 1

    def test_fixed_multi_ipi_parallel(self):
        h = make_harness(
            n_cpus=2, kernel=kernel(realtime_scheduling=True, fix_multi_ipi=True)
        )
        vips = self._setup_two(h)
        for v in vips:
            wake_at(h, 12_000.0, v)
        h.run(ms(100))
        expected = 12_000.0 + h.config.ipi_latency_us + 10.0
        assert h.times("vip0")[0] == pytest.approx(expected)
        assert h.times("vip1")[0] == pytest.approx(expected)
        assert h.sched.ipis_suppressed == 0
        assert h.sched.ipis_sent == 2


class TestPreemptedWorkConservation:
    def test_preempted_thread_resumes_with_remaining_work(self):
        h = make_harness(n_cpus=1, kernel=kernel(realtime_scheduling=True))
        h.spawn(h.worker("victim", [ms(30)]), priority=60, cpu=0)

        def vip():
            yield Block()
            yield Compute(ms(5))
            h.mark("vip")

        t = h.spawn(vip(), priority=30, cpu=0, allow_steal=False)
        wake_at(h, ms(10), t)
        h.run(ms(100))
        # Victim: 30 ms of work + the 5 ms it sat preempted + the IPI
        # handler cost (it keeps running during the IPI's flight time).
        (when,) = h.times("victim")
        assert when == pytest.approx(ms(35) + h.config.ipi_cost_us, abs=1.0)

    def test_preemption_counts_recorded(self):
        h = make_harness(n_cpus=1, kernel=kernel(realtime_scheduling=True))
        victim = h.spawn(h.worker("victim", [ms(30)]), priority=60, cpu=0)

        def vip():
            yield Block()
            yield Compute(ms(1))

        t = h.spawn(vip(), priority=30, cpu=0, allow_steal=False)
        wake_at(h, ms(10), t)
        h.run(ms(100))
        assert victim.stats.preemptions == 1
        assert victim.stats.dispatches == 2


class TestHardwareInterrupts:
    def test_hardware_thread_preempts_immediately(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        h.spawn(h.worker("hog", [ms(50)]), priority=60, cpu=0)

        def handler():
            yield Block()
            yield Compute(20.0)
            h.mark("irq")

        t = h.spawn(handler(), priority=2, cpu=0, allow_steal=False, hardware=True)
        wake_at(h, 12_345.0, t)
        h.run(ms(100))
        assert h.times("irq") == [pytest.approx(12_365.0)]


class TestGlobalQueue:
    def test_global_queue_served_by_any_cpu(self):
        h = make_harness(n_cpus=2, kernel=kernel(daemons_global_queue=True))
        h.spawn(h.worker("busy", [ms(5)]), cpu=0)

        def d():
            yield Compute(100.0)
            h.mark("daemon")

        h.spawn(d(), priority=56, cpu=0, use_global_queue=True)
        h.run(ms(10))
        # CPU 1 idle: the globally-queued daemon runs there at once.
        assert h.times("daemon") == [100.0]

    def test_global_queue_preempts_worst_cpu(self):
        h = make_harness(
            n_cpus=2,
            kernel=kernel(daemons_global_queue=True, realtime_scheduling=True),
        )
        h.spawn(h.worker("p50", [ms(50)]), priority=50, cpu=0)
        h.spawn(h.worker("p90", [ms(50)]), priority=90, cpu=1)

        def d():
            yield Block()
            yield Compute(100.0)
            h.mark("daemon")

        t = h.spawn(d(), priority=56, cpu=0, use_global_queue=True)
        wake_at(h, ms(1), t)
        h.run(ms(100))
        # Preempts the priority-90 occupant (CPU 1), not the priority-50.
        (when,) = h.times("daemon")
        assert when == pytest.approx(ms(1) + h.config.ipi_latency_us + 100.0)
        p50_done = h.times("p50")[0]
        assert p50_done == pytest.approx(ms(50))

    def test_global_queue_flag_ignored_when_disabled(self):
        h = make_harness(n_cpus=2, kernel=kernel(daemons_global_queue=False))
        busy = h.spawn(h.worker("busy", [ms(5)]), cpu=0)

        def d():
            yield Compute(100.0)
            h.mark("daemon")

        # use_global_queue requested but policy off: queued to home CPU 0,
        # where (better priority, spawn lands in tick context) it preempts
        # the 60-priority occupant instead of using the global queue; the
        # evicted thread migrates to the idle CPU 1 and loses no time.
        h.spawn(d(), priority=56, cpu=0, use_global_queue=True, allow_steal=False)
        h.run(ms(10))
        assert h.times("daemon") == [pytest.approx(100.0)]
        assert h.times("busy") == [pytest.approx(ms(5))]
        assert h.sched.global_queue.best_priority() is None
