"""I/O service: spin/block completion, FIFO, and the starvation mechanic."""

import pytest

from repro.config import ClusterConfig, KernelConfig, MachineConfig
from repro.daemons.io import IoService
from repro.kernel.thread import Block, Compute, ThreadState
from repro.machine import Cluster
from repro.units import ms, s


def make_node(n_cpus=4, kernel=None):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=1, cpus_per_node=n_cpus),
        kernel=kernel if kernel is not None else KernelConfig(context_switch_us=0.0),
    )
    c = Cluster(cfg)
    return c, c.nodes[0]


class TestIoService:
    def test_block_mode_completes(self):
        c, node = make_node()
        io = IoService(node, per_byte_us=0.001, base_cost_us=100.0)
        done = []

        def app():
            thread = node.scheduler.threads[-1]  # self (spawned below)
            yield Compute(10.0)
            yield from io.request(1000, requester=self_thread[0], mode="block")
            done.append(c.sim.now)

        self_thread = []
        t = node.scheduler.spawn(app(), name="app", priority=60, affinity_cpu=1, start=False)
        self_thread.append(t)
        node.scheduler.start(t)
        c.run_for(ms(50))
        assert done and done[0] >= 10.0 + 100.0 + 1.0

    def test_spin_mode_completes(self):
        c, node = make_node()
        io = IoService(node, per_byte_us=0.001, base_cost_us=100.0)
        done = []
        self_thread = []

        def app():
            yield Compute(10.0)
            yield from io.request(1000, requester=self_thread[0], mode="spin")
            done.append(c.sim.now)

        t = node.scheduler.spawn(app(), name="app", priority=60, affinity_cpu=1, start=False)
        self_thread.append(t)
        node.scheduler.start(t)
        c.run_for(ms(50))
        assert done and done[0] >= 111.0
        assert io.completed == 1

    def test_fifo_service_order(self):
        c, node = make_node()
        io = IoService(node, per_byte_us=0.0, base_cost_us=200.0)
        finish = {}

        def app(tag, cpu):
            holder = []

            def body():
                yield from io.request(0, requester=holder[0], mode="block")
                finish[tag] = c.sim.now

            t = node.scheduler.spawn(body(), name=tag, priority=60, affinity_cpu=cpu, start=False)
            holder.append(t)
            node.scheduler.start(t)

        app("first", 1)
        app("second", 2)
        c.run_for(ms(50))
        assert finish["first"] < finish["second"]

    def test_pending_counter(self):
        c, node = make_node(n_cpus=1)
        # Keep the worker starved by a favored hog so requests pile up.
        def hog():
            yield Compute(s(1))

        node.scheduler.spawn(hog(), name="hog", priority=10, affinity_cpu=0)
        io = IoService(node, base_cost_us=100.0)
        holder = []

        def body():
            yield from io.request(0, requester=holder[0], mode="block")

        t = node.scheduler.spawn(body(), name="app", priority=60, affinity_cpu=0, start=False)
        holder.append(t)
        node.scheduler.start(t)
        c.run_for(ms(10))
        # The worker accepted the request (zero-time generator resume) but
        # cannot execute it while the favored hog owns the only CPU.
        assert io.completed == 0
        assert t.state is ThreadState.BLOCKED

    def test_starvation_by_favored_spinners(self):
        """All CPUs spinning at priority better than the worker: no I/O
        progress — the ALE3D fiasco in miniature."""
        c, node = make_node(n_cpus=2)
        io = IoService(node, base_cost_us=ms(50), priority=40)
        finish = []
        holder = []

        def requester():
            yield from io.request(0, requester=holder[0], mode="spin")
            finish.append(c.sim.now)

        # Favored (30) spinner on the other CPU, burning forever.
        def favored_hog():
            yield Compute(s(10))

        node.scheduler.spawn(favored_hog(), name="hog", priority=30, affinity_cpu=1)
        t = node.scheduler.spawn(requester(), name="app", priority=30, affinity_cpu=0, start=False)
        holder.append(t)
        node.scheduler.start(t)
        c.run_for(s(1))
        # The worker may briefly hold CPU 0 before the favored requester's
        # preemption lands, but it is evicted within a tick and the 50 ms
        # transfer never completes: both CPUs spin at 30 < 40.
        assert finish == []
        assert io.completed == 0

    def test_worker_preempts_less_favored_spinners(self):
        """Favored priority *below* the worker (paper's 41 vs 40): I/O
        proceeds by preempting the application."""
        c, node = make_node(n_cpus=2)
        io = IoService(node, base_cost_us=500.0, priority=40)
        finish = []
        holder = []

        def requester():
            yield from io.request(0, requester=holder[0], mode="spin")
            finish.append(c.sim.now)

        def favored_hog():
            yield Compute(s(10))

        node.scheduler.spawn(favored_hog(), name="hog", priority=41, affinity_cpu=1)
        t = node.scheduler.spawn(requester(), name="app", priority=41, affinity_cpu=0, start=False)
        holder.append(t)
        node.scheduler.start(t)
        c.run_for(s(1))
        assert len(finish) == 1
        assert finish[0] < ms(50)
