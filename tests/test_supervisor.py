"""The supervised backend: heartbeats, crash/hang recovery, deterministic
retry/backoff, quarantine, harness chaos, graceful SIGINT drain, and the
journal-merge hardening against torn shard entries.

The headline contract these tests pin: a supervised campaign — *including
one whose workers are deliberately killed by harness chaos* — produces
results and journals byte-identical to a clean serial run, at any worker
count.
"""

import json
import logging
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.chaos.harness_faults import injection_for, plan_for
from repro.checkpoint.harness import SweepJournal
from repro.experiments.common import PROTO16, allreduce_sweep
from repro.experiments.runner import TrialRunner, TrialSpec
from repro.experiments.supervisor import SupervisorConfig
from repro.results import save_result
from tests.test_runner import _journal_files

SWEEP_KW = dict(proc_counts=(128, 256), n_calls=40, n_seeds=2)
#: The four trial keys SWEEP_KW produces for PROTO16, in spec order.
SWEEP_KEYS = [f"proto16-n{n}-s{s}" for n in (128, 256) for s in (0, 1)]
#: Chosen so the four keys' plans cover crash/pre, crash/mid AND hang
#: (asserted below) while every injected fault stays transient.
CHAOS_SEED = 7

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill tests rely on the fork start method",
)


def fast_config(**overrides) -> SupervisorConfig:
    """Supervisor policy scaled down to test time: tight heartbeats so
    hang detection is fast, near-zero backoff so retries are cheap."""
    kw = dict(backoff_base_s=0.01, heartbeat_interval_s=0.05,
              heartbeat_timeout_s=1.0)
    kw.update(overrides)
    return SupervisorConfig(**kw)


def _double_trial(params):
    return {"twice": params["x"] * 2}


def _poison_trial(params):
    """Kills every worker that touches it — the quarantine case."""
    os._exit(1)


def _slow_trial(params):
    time.sleep(params["sleep_s"])
    return {"i": params["i"]}


def _specs(n, fn="tests.test_supervisor:_double_trial"):
    return [TrialSpec(f"t{i}", fn, {"x": i}) for i in range(n)]


class TestSupervisedCleanRuns:
    def test_stats_track_a_clean_campaign(self):
        runner = TrialRunner(jobs=2, supervisor=fast_config())
        outs = runner.run(_specs(6))
        assert [o.record["twice"] for o in outs] == [0, 2, 4, 6, 8, 10]
        assert all(o.retries == 0 and o.taxonomy is None for o in outs)
        assert runner.stats.canonical() == {
            "trials": 6,
            "retries": {},
            "backoffs": {},
            "fault_counts": {},
            "quarantined": [],
        }
        assert 1 <= runner.stats.spawned <= 2

    def test_supervised_matches_serial_bytes(self, tmp_path):
        serial = allreduce_sweep(
            PROTO16, **SWEEP_KW, journal=SweepJournal(tmp_path / "s"), jobs=1
        )
        runner = TrialRunner(
            jobs=4, journal=SweepJournal(tmp_path / "p"), backend="supervised",
            supervisor=fast_config(),
        )
        supervised = allreduce_sweep(PROTO16, **SWEEP_KW, runner=runner)
        assert np.array_equal(serial.mean_us, supervised.mean_us)
        assert serial.failure_taxonomy == supervised.failure_taxonomy == {}
        assert _journal_files(tmp_path / "s") == _journal_files(tmp_path / "p")


class TestQuarantine:
    @fork_only
    def test_poison_trial_quarantined_campaign_survives(self, tmp_path):
        """A spec that kills every worker it touches is retried
        max_retries times, then quarantined with a structured journal
        entry — and every other trial still completes."""
        journal = SweepJournal(tmp_path)
        specs = _specs(4)
        specs.insert(2, TrialSpec("poison", "tests.test_supervisor:_poison_trial", {}))
        runner = TrialRunner(
            jobs=2, journal=journal, supervisor=fast_config(max_retries=2)
        )
        outs = {o.key: o for o in runner.run(specs)}

        bad = outs["poison"]
        assert not bad.ok
        assert bad.taxonomy == "quarantined"
        assert bad.retries == 2
        assert "quarantined after 2 retries" in bad.error
        for i in range(4):
            assert outs[f"t{i}"].record == {"twice": i * 2}

        entry = journal.entries()["poison"]
        assert entry["status"] == "failed"
        assert entry["taxonomy"] == "quarantined"
        assert "worker crash" in entry["reason"]

        stats = runner.stats.canonical()
        assert stats["quarantined"] == ["poison"]
        assert stats["retries"] == {"poison": 3}  # attempts 0, 1, 2 all died
        assert stats["backoffs"] == {"poison": [0.01, 0.02]}
        assert stats["fault_counts"] == {"crash": 3}

    @fork_only
    def test_zero_retry_budget_quarantines_first_crash(self):
        runner = TrialRunner(jobs=2, supervisor=fast_config(max_retries=0))
        outs = {
            o.key: o
            for o in runner.run(
                [
                    TrialSpec("poison", "tests.test_supervisor:_poison_trial", {}),
                    TrialSpec("ok", "tests.test_supervisor:_double_trial", {"x": 5}),
                ]
            )
        }
        assert outs["ok"].record == {"twice": 10}
        assert outs["poison"].taxonomy == "quarantined"
        assert outs["poison"].retries == 0
        assert runner.stats.canonical()["backoffs"] == {}  # never re-dispatched


class TestHarnessChaosDeterminism:
    def test_seed_covers_every_fault_mode(self):
        """Sanity-pin the chosen seed: across the sweep's four keys the
        plans must exercise crash/pre, crash/mid and hang, and stay
        transient under the default retry budget."""
        plans = {k: plan_for(CHAOS_SEED, k) for k in SWEEP_KEYS}
        shapes = {
            (p.mode, p.point if p.mode == "crash" else None)
            for p in plans.values()
            if p.mode is not None
        }
        assert {("crash", "pre"), ("crash", "mid"), ("hang", None)} <= shapes
        assert all(p.kills <= 2 for p in plans.values())
        # And the injection schedule is exactly "first `kills` attempts
        # die, the next survives".
        for key, plan in plans.items():
            for attempt in range(plan.kills):
                assert injection_for(CHAOS_SEED, key, attempt) is not None
            assert injection_for(CHAOS_SEED, key, plan.kills) is None

    @fork_only
    def test_chaos_campaign_byte_identical_to_clean_serial(self, tmp_path):
        """The acceptance criterion: with harness chaos killing workers
        mid-campaign, results and journals still match a clean serial run
        byte for byte, at --jobs 2 and --jobs 4 alike — and the retry
        telemetry matches the pure-function fault plans exactly."""
        serial = allreduce_sweep(
            PROTO16, **SWEEP_KW, journal=SweepJournal(tmp_path / "serial"), jobs=1
        )
        save_result(tmp_path / "serial.json", serial)

        cfg = fast_config(chaos_seed=CHAOS_SEED)
        stats_by_jobs = {}
        for jobs in (2, 4):
            runner = TrialRunner(
                jobs=jobs, journal=SweepJournal(tmp_path / f"j{jobs}"),
                supervisor=cfg,
            )
            chaotic = allreduce_sweep(PROTO16, **SWEEP_KW, runner=runner)
            save_result(tmp_path / f"j{jobs}.json", chaotic)

            assert chaotic.failed_points == []
            assert np.array_equal(serial.mean_us, chaotic.mean_us)
            assert (tmp_path / f"j{jobs}.json").read_bytes() == (
                tmp_path / "serial.json"
            ).read_bytes()
            assert _journal_files(tmp_path / f"j{jobs}") == _journal_files(
                tmp_path / "serial"
            )
            stats_by_jobs[jobs] = runner.stats.canonical()

        # Worker count cannot change what was killed or retried...
        assert stats_by_jobs[2] == stats_by_jobs[4]
        # ... and what happened is exactly what the plans prescribed.
        plans = {k: plan_for(CHAOS_SEED, k) for k in SWEEP_KEYS}
        faulted = {k: p for k, p in plans.items() if p.mode is not None}
        assert stats_by_jobs[2]["retries"] == {
            k: p.kills for k, p in faulted.items()
        }
        assert stats_by_jobs[2]["backoffs"] == {
            k: [cfg.backoff_s(a) for a in range(p.kills)]
            for k, p in faulted.items()
        }
        expected_faults: dict[str, int] = {}
        for p in faulted.values():
            expected_faults[p.mode] = expected_faults.get(p.mode, 0) + p.kills
        assert stats_by_jobs[2]["fault_counts"] == expected_faults
        assert stats_by_jobs[2]["quarantined"] == []

    @fork_only
    def test_chaos_run_repeats_identically(self, tmp_path):
        """Same seed, same kill schedule: two chaos runs agree on journal
        bytes and on the full retry/backoff telemetry."""
        stats, journals = [], []
        for tag in ("a", "b"):
            runner = TrialRunner(
                jobs=2, journal=SweepJournal(tmp_path / tag),
                supervisor=fast_config(chaos_seed=CHAOS_SEED),
            )
            allreduce_sweep(PROTO16, **SWEEP_KW, runner=runner)
            stats.append(runner.stats.canonical())
            journals.append(_journal_files(tmp_path / tag))
        assert stats[0] == stats[1]
        assert journals[0] == journals[1]
        assert stats[0]["retries"]  # the seed really did kill workers


_DRAIN_DRIVER = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from repro.checkpoint.harness import SweepJournal
from repro.experiments.runner import TrialRunner, TrialSpec
from repro.experiments.supervisor import SupervisorConfig

specs = [
    TrialSpec(f"t{{i:02d}}", "tests.test_supervisor:_slow_trial",
              {{"i": i, "sleep_s": 0.3}})
    for i in range({n_trials})
]
runner = TrialRunner(
    jobs=2, journal=SweepJournal({results!r}),
    supervisor=SupervisorConfig(backoff_base_s=0.01, heartbeat_interval_s=0.05),
)
print("READY", flush=True)
try:
    runner.run(specs)
    print("FINISHED", flush=True)
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
    sys.exit(130)
"""


class TestGracefulShutdown:
    N_TRIALS = 30

    @fork_only
    def test_sigint_drains_journals_and_leaves_no_children(self, tmp_path):
        """SIGINT mid-campaign: in-flight trials finish and journal, every
        worker is gone with the parent, the exit code is 130, and the
        journal on disk resumes the remaining trials."""
        repo_root = Path(__file__).resolve().parent.parent
        script = _DRAIN_DRIVER.format(
            src=str(repo_root / "src"),
            root=str(repo_root),
            results=str(tmp_path),
            n_trials=self.N_TRIALS,
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            start_new_session=True,  # own process group, so we can prove it empty
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(2.0)  # let a handful of trials finish first
            os.kill(proc.pid, signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()

        assert proc.returncode == 130, err
        assert "INTERRUPTED" in out and "FINISHED" not in out
        # The whole process group died with the parent: no orphan workers.
        with pytest.raises(ProcessLookupError):
            os.killpg(proc.pid, 0)

        # Shards were merged on the way out; completed trials journaled.
        done = _journal_files(tmp_path)
        assert 0 < len(done) < self.N_TRIALS
        assert all(
            json.loads(body)["status"] == "ok" for body in done.values()
        )

        # And the campaign resumes: journaled trials served, rest rerun.
        journal = SweepJournal(tmp_path)
        outs = TrialRunner(journal=journal).run(
            [
                TrialSpec(f"t{i:02d}", "tests.test_supervisor:_slow_trial",
                          {"i": i, "sleep_s": 0.0})
                for i in range(self.N_TRIALS)
            ]
        )
        assert journal.hits == len(done)
        assert all(o.ok for o in outs)


class TestCorruptShardMerge:
    def _plant_torn(self, root, key: str) -> Path:
        shard = Path(root) / "journal" / "shards" / "w999"
        shard.mkdir(parents=True, exist_ok=True)
        victim = shard / f"{key}.json"
        victim.write_text('{"status": "ok", "rec')  # torn mid-write
        return victim

    def test_corrupt_entry_dropped_with_warning(self, tmp_path, caplog):
        SweepJournal(tmp_path, shard="w1").record("good", {"mean_us": 1.0})
        self._plant_torn(tmp_path, "torn")
        reader = SweepJournal(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.harness"):
            entries = reader.entries()
        assert "good" in entries and "torn" not in entries
        assert "dropping corrupt shard entry" in caplog.text
        assert "torn.json" in caplog.text
        assert not (tmp_path / "journal" / "shards").exists()

    def test_corrupt_shard_never_clobbers_canonical_entry(self, tmp_path):
        """A good canonical entry must survive a same-key torn shard file
        — the merge validates before it replaces."""
        journal = SweepJournal(tmp_path)
        journal.record("k", {"mean_us": 42.0})
        before = (tmp_path / "journal" / "k.json").read_bytes()
        self._plant_torn(tmp_path, "k")
        assert SweepJournal(tmp_path).lookup("k") == {"mean_us": 42.0}
        assert (tmp_path / "journal" / "k.json").read_bytes() == before

    def test_trial_behind_torn_shard_is_recomputed(self, tmp_path):
        """Resume over a journal holding a half-written shard entry: the
        torn trial reruns, lands whole, and the sweep matches clean."""
        self._plant_torn(tmp_path, "t1")
        journal = SweepJournal(tmp_path)
        outs = TrialRunner(journal=journal).run(_specs(3))
        assert [o.record["twice"] for o in outs] == [0, 2, 4]
        assert not any(o.cached for o in outs)
        assert json.loads(
            (tmp_path / "journal" / "t1.json").read_text()
        ) == {"status": "ok", "record": {"twice": 2}}

    def test_stale_tmp_spill_is_swept(self, tmp_path):
        shard = tmp_path / "journal" / "shards" / "w7"
        shard.mkdir(parents=True)
        (shard / ".k.json.abc123.tmp").write_text('{"status": "ok"')
        SweepJournal(tmp_path, shard="w7").record("k", {"mean_us": 1.0})
        reader = SweepJournal(tmp_path)
        assert reader.lookup("k") == {"mean_us": 1.0}
        assert not (tmp_path / "journal" / "shards").exists()


class TestCliValidation:
    def test_harness_chaos_requires_parallel_supervised(self, capsys):
        from repro.experiments import cli

        with pytest.raises(SystemExit):
            cli.main(["fig3", "--quick", "--harness-chaos", "7"])
        assert "--harness-chaos needs --jobs >= 2" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli.main(
                ["fig3", "--quick", "--jobs", "2", "--backend", "pool",
                 "--harness-chaos", "7"]
            )

    def test_retry_knobs_validated(self, capsys):
        from repro.experiments import cli

        with pytest.raises(SystemExit):
            cli.main(["fig3", "--quick", "--max-retries", "-1"])
        with pytest.raises(SystemExit):
            cli.main(["fig3", "--quick", "--backoff", "-0.5"])
