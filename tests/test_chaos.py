"""Chaos engine: generator determinism, schedule composition, oracles,
ddmin shrinking, and the planted-bug end-to-end demo.

The expensive fuzzing itself runs in CI's chaos smoke job and offline
campaigns; these tests pin the machinery — that schedules are pure
functions of their seed, that they compose into valid fault configs,
that the oracles pass on schedules known to be survivable and fail on a
deadlock, and that the shrinker minimizes correctly (unit-level with a
synthetic predicate, end-to-end against the planted transport bug)."""

import json

import pytest

from repro.chaos import (
    ChaosSchedule,
    ChaosWorkload,
    chaos_workload,
    ddmin,
    generate_schedule,
    judge,
    liveness_bound_us,
    shrink_schedule,
)
from repro.chaos.generator import estimated_span_us
from repro.chaos.schedule import ENTRY_KINDS


QUICK = chaos_workload(quick=True)


# ----------------------------------------------------------------------
# Workload / schedule data model
# ----------------------------------------------------------------------
class TestScheduleModel:
    def test_workload_shape_validation(self):
        with pytest.raises(ValueError):
            ChaosWorkload(n_ranks=1)
        with pytest.raises(ValueError):
            ChaosWorkload(time_compression=0.0)

    def test_entry_kind_validation(self):
        with pytest.raises(ValueError, match="bad chaos entry"):
            ChaosSchedule(seed=0, entries=({"kind": "gremlin"},))

    def test_json_round_trip_is_exact(self):
        for seed in range(20):
            s = generate_schedule(seed, QUICK)
            blob = json.dumps(s.to_json())  # through real serialization
            assert ChaosSchedule.from_json(json.loads(blob)) == s

    def test_duplicate_singleton_axis_rejected(self):
        s = ChaosSchedule(
            seed=0,
            workload=QUICK,
            entries=({"kind": "pipe", "prob": 0.1}, {"kind": "pipe", "prob": 0.2}),
        )
        with pytest.raises(ValueError, match="duplicate singleton"):
            s.fault_config()

    def test_fault_config_composition(self):
        s = ChaosSchedule(
            seed=0,
            workload=QUICK,
            entries=(
                {"kind": "net", "drop_prob": 0.2, "window_us": [10.0, 20.0]},
                {"kind": "pipe", "prob": 0.3},
                {"kind": "timesync", "at_us": 50.0, "jump_us": 5.0,
                 "drift_rate": 1e-5},
                {"kind": "node", "node": 1, "fault": "slowdown", "at_us": 1.0,
                 "duration_us": 2.0, "fraction": 0.4},
                {"kind": "cosched", "node": 0, "fault": "hang", "at_us": 3.0,
                 "duration_us": 4.0},
            ),
        )
        cfg = s.fault_config()
        assert cfg.enabled and cfg.msg_drop_prob == 0.2
        assert cfg.net_window_us == (10.0, 20.0)
        assert cfg.pipe_loss_prob == 0.3
        assert cfg.timesync_loss_at_us == 50.0
        assert len(cfg.node_faults) == 1 and cfg.node_faults[0].fraction == 0.4
        assert len(cfg.cosched_faults) == 1 and cfg.cosched_faults[0].kind == "hang"

    def test_composition_rejects_out_of_range_target(self):
        s = ChaosSchedule(
            seed=0,
            workload=QUICK,  # 2 nodes
            entries=(
                {"kind": "node", "node": 9, "fault": "crash", "at_us": 1.0,
                 "duration_us": 2.0},
            ),
        )
        with pytest.raises(ValueError, match="unknown node"):
            s.fault_config()


# ----------------------------------------------------------------------
# Generator determinism
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_schedule(self):
        for seed in range(20):
            assert generate_schedule(seed, QUICK) == generate_schedule(seed, QUICK)

    def test_seeds_differ(self):
        schedules = {
            json.dumps(generate_schedule(s, QUICK).to_json()) for s in range(20)
        }
        assert len(schedules) > 10  # genuinely random across seeds

    def test_all_kinds_reachable(self):
        kinds = set()
        for seed in range(60):
            kinds.update(e["kind"] for e in generate_schedule(seed, QUICK).entries)
        assert kinds == set(ENTRY_KINDS)

    def test_every_schedule_composes(self):
        for seed in range(60):
            cfg = generate_schedule(seed, QUICK).fault_config()
            assert cfg.enabled

    def test_scheduled_faults_land_inside_the_estimated_span(self):
        for seed in range(60):
            span = estimated_span_us(QUICK, seed)  # span is seed-dependent
            for e in generate_schedule(seed, QUICK).entries:
                if "at_us" in e:
                    assert 0.0 <= e["at_us"] <= 0.8 * span


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_liveness_bound_finite_and_above_base(self):
        for seed in range(10):
            s = generate_schedule(seed, QUICK)
            bound = liveness_bound_us(s)
            assert bound < float("inf")
            assert bound > QUICK.calls * QUICK.compute_between_us

    def test_clean_schedule_passes_all_oracles(self):
        report = judge(ChaosSchedule(seed=3, workload=QUICK))
        assert report.ok, report.details
        assert report.details["completed"] and report.details["values_ok"]
        assert report.details["violations"] == []

    def test_faulty_schedule_passes_and_exercises_defenses(self):
        # Seed 2's draw is the hard one: a drop storm plus node, cosched
        # and pipe faults — survivable, but only through the resilience
        # machinery, whose activity the counters must show.
        report = judge(generate_schedule(2, QUICK))
        assert report.ok, report.details
        c = report.details["counters"]
        assert c["retransmits"] > 0 and c["fault_events"] > 0


# ----------------------------------------------------------------------
# ddmin (unit, synthetic predicate — no simulator)
# ----------------------------------------------------------------------
class TestDdmin:
    def test_minimizes_to_exact_culprit_set(self):
        culprits = {3, 11}
        calls = []

        def fails(items):
            calls.append(list(items))
            return culprits <= set(items)

        out = ddmin(list(range(16)), fails)
        assert set(out) == culprits
        assert len(calls) < 60  # polynomial probing, not exhaustive

    def test_single_culprit(self):
        assert ddmin(list(range(10)), lambda it: 7 in it) == [7]

    def test_all_items_needed_stays_whole(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda it: len(it) == 3) == items


# ----------------------------------------------------------------------
# Schedule shrinking (synthetic oracle via monkeypatch — fast)
# ----------------------------------------------------------------------
class TestShrinkSchedule:
    def _fake_judge(self, predicate):
        from repro.chaos.oracles import OracleReport

        def judge(schedule, check_determinism=True):
            failed = ("liveness",) if predicate(schedule) else ()
            return OracleReport(failed=failed, details={})

        return judge

    def test_removes_irrelevant_entries_and_shrinks_fields(self, monkeypatch):
        import repro.chaos.shrink as shrink_mod

        # "Bug": any net drop_prob >= 0.2 deadlocks; everything else noise.
        predicate = lambda s: any(
            e["kind"] == "net" and e.get("drop_prob", 0.0) >= 0.2 for e in s.entries
        )
        monkeypatch.setattr(shrink_mod, "judge", self._fake_judge(predicate))
        schedule = ChaosSchedule(
            seed=0,
            workload=QUICK,
            entries=(
                {"kind": "node", "node": 0, "fault": "crash", "at_us": 1.0,
                 "duration_us": 5.0},
                {"kind": "net", "drop_prob": 0.9, "dup_prob": 0.3,
                 "window_us": [0.0, 100.0]},
                {"kind": "pipe", "prob": 0.2},
            ),
        )
        res = shrink_mod.shrink_schedule(schedule, "liveness", budget=100)
        assert res.minimized_entries == 1
        (entry,) = res.schedule.entries
        assert entry["kind"] == "net"
        assert "dup_prob" not in entry and "window_us" not in entry
        assert 0.2 <= entry["drop_prob"] < 0.45  # halved toward the threshold

    def test_budget_is_respected(self, monkeypatch):
        import repro.chaos.shrink as shrink_mod

        evals = []
        real = self._fake_judge(lambda s: True)

        def counting(schedule, check_determinism=True):
            evals.append(1)
            return real(schedule)

        monkeypatch.setattr(shrink_mod, "judge", counting)
        schedule = generate_schedule(0, QUICK)
        shrink_mod.shrink_schedule(schedule, "liveness", budget=5)
        assert len(evals) <= 5

    def test_shrinking_is_deterministic(self, monkeypatch):
        import repro.chaos.shrink as shrink_mod

        predicate = lambda s: any(
            e["kind"] == "net" and e.get("drop_prob", 0.0) >= 0.15 for e in s.entries
        )
        monkeypatch.setattr(shrink_mod, "judge", self._fake_judge(predicate))
        schedule = ChaosSchedule(
            seed=0,
            workload=QUICK,
            entries=(
                {"kind": "net", "drop_prob": 0.8},
                {"kind": "pipe", "prob": 0.3},
            ),
        )
        a = shrink_mod.shrink_schedule(schedule, "liveness", budget=50)
        b = shrink_mod.shrink_schedule(schedule, "liveness", budget=50)
        assert a.schedule == b.schedule and a.evals == b.evals


# ----------------------------------------------------------------------
# Planted-bug end to end: the fuzzer's seed-2 draw catches the bug and
# ddmin minimizes it (the slow but decisive demo)
# ----------------------------------------------------------------------
class TestPlantedBugEndToEnd:
    def test_retransmit_giveup_found_and_minimized(self, monkeypatch):
        from repro.faults.demo import ENV_VAR

        monkeypatch.setenv(ENV_VAR, "retransmit_giveup")
        schedule = generate_schedule(2, QUICK)
        report = judge(schedule, check_determinism=False)
        assert report.failed == ("liveness",), report.details
        assert report.details["counters"]["gaveup"] > 0

        res = shrink_schedule(schedule, "liveness", budget=30)
        assert res.minimized_entries <= 3
        kinds = {e["kind"] for e in res.schedule.entries}
        assert "net" in kinds  # the drop storm is the load-bearing fault
        # The minimized schedule still reproduces, and cleanly (without
        # the planted bug) the very same schedule survives.
        assert "liveness" in judge(res.schedule, check_determinism=False).failed
        monkeypatch.delenv(ENV_VAR)
        assert judge(res.schedule, check_determinism=False).ok
