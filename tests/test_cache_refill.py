"""Cache-pollution penalty on resume after foreign occupancy."""

import pytest

from repro.config import KernelConfig
from repro.kernel.thread import Compute, Sleep
from repro.units import ms
from tests.conftest import make_harness


def kernel(refill):
    return KernelConfig(context_switch_us=0.0, tick_cost_us=0.0, cache_refill_us=refill)


class TestCacheRefill:
    def test_uncontended_thread_pays_nothing(self):
        h = make_harness(n_cpus=1, kernel=kernel(50.0))
        h.spawn(h.worker("a", [100.0, 100.0]))
        h.run(ms(5))
        # Same thread re-placing (sleep/resume) never pays: no eviction.
        assert h.times("a") == [100.0, 200.0]

    def test_victim_pays_refill_after_daemon(self):
        h = make_harness(n_cpus=1, kernel=kernel(50.0))
        h.spawn(h.worker("app", [ms(30)]), priority=60, cpu=0)

        def daemon():
            yield Sleep(ms(5))
            yield Compute(200.0)

        h.spawn(daemon(), priority=56, cpu=0, allow_steal=False)
        h.run(ms(60))
        (done,) = h.times("app")
        # 30 ms work + daemon's 200 us + the daemon's own refill (it was
        # placed after the app) + the app's refill on resume.
        assert done == pytest.approx(ms(30) + 200.0 + 50.0 + 50.0, abs=1.0)

    def test_disabled_by_default(self):
        assert KernelConfig().cache_refill_us == 0.0
        h = make_harness(n_cpus=1, kernel=kernel(0.0))
        h.spawn(h.worker("app", [ms(30)]), priority=60, cpu=0)

        def daemon():
            yield Sleep(ms(5))
            yield Compute(200.0)

        h.spawn(daemon(), priority=56, cpu=0, allow_steal=False)
        h.run(ms(60))
        assert h.times("app") == [pytest.approx(ms(30) + 200.0, abs=1.0)]

    def test_refill_amplifies_interference_end_to_end(self):
        """With pollution on, the same daemon ecology hurts more — the
        paper's page-fault observation, quantified."""
        from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
        from repro.config import ClusterConfig, MachineConfig, MpiConfig
        from repro.daemons.catalog import scale_noise, standard_noise
        from repro.system import System

        def run(refill):
            cfg = ClusterConfig(
                machine=MachineConfig(n_nodes=2, cpus_per_node=8),
                kernel=KernelConfig(cache_refill_us=refill),
                mpi=MpiConfig(progress_threads_enabled=False),
                noise=scale_noise(standard_noise(include_cron=False), 40.0),
                seed=3,
            )
            return run_aggregate_trace(
                System(cfg), 16, 8,
                AggregateTraceConfig(calls_per_loop=200, compute_between_us=200.0),
            ).mean_us

        assert run(30.0) > run(0.0)
