"""Node/cluster assembly, placement, clock offsets and sync."""

import pytest

from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
)
from repro.machine import Cluster, Placement
from repro.units import ms


class TestPlacement:
    def test_block_placement(self):
        p = Placement(n_ranks=32, tasks_per_node=16)
        assert p.node_of(0) == 0
        assert p.node_of(15) == 0
        assert p.node_of(16) == 1
        assert p.cpu_of(17) == 1
        assert p.n_nodes == 2

    def test_partial_last_node(self):
        p = Placement(n_ranks=20, tasks_per_node=16)
        assert p.n_nodes == 2

    def test_15_per_node_leaves_top_cpu_free(self):
        p = Placement(n_ranks=30, tasks_per_node=15)
        cpus = {p.cpu_of(r) for r in range(30)}
        assert 15 not in cpus
        assert max(cpus) == 14


class TestCluster:
    def test_shapes(self):
        cfg = ClusterConfig(machine=MachineConfig(n_nodes=3, cpus_per_node=4))
        c = Cluster(cfg)
        assert c.n_nodes == 3
        assert c.cpus_per_node == 4
        assert c.total_cpus == 12
        assert all(n.scheduler.n_cpus == 4 for n in c.nodes)

    def test_place_validates(self):
        c = Cluster(ClusterConfig(machine=MachineConfig(n_nodes=2, cpus_per_node=4)))
        with pytest.raises(ValueError):
            c.place(8, tasks_per_node=5)
        with pytest.raises(ValueError):
            c.place(100, tasks_per_node=4)
        p = c.place(8, tasks_per_node=4)
        assert p.n_nodes == 2

    def test_unsynced_clock_offsets_are_large_and_distinct(self):
        cfg = ClusterConfig(machine=MachineConfig(n_nodes=4, max_clock_offset_us=ms(200)))
        c = Cluster(cfg)
        offs = [n.clock_offset_us for n in c.nodes]
        assert len(set(offs)) == 4
        assert all(abs(o) <= ms(200) for o in offs)
        assert max(abs(o) for o in offs) > 100.0  # virtually certain

    def test_synced_clocks_within_read_error(self):
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=4),
            cosched=CoschedConfig(enabled=True, sync_clock=True),
        )
        c = Cluster(cfg)
        for n in c.nodes:
            assert abs(n.clock_offset_us) <= c.switch.read_error_us

    def test_local_global_time_roundtrip(self):
        c = Cluster(ClusterConfig(machine=MachineConfig(n_nodes=2)))
        node = c.nodes[1]
        t = 123_456.0
        assert node.global_time(node.local_time(t)) == pytest.approx(t)

    def test_reproducible_construction(self):
        cfg = ClusterConfig(machine=MachineConfig(n_nodes=3), seed=77)
        a = Cluster(cfg)
        b = Cluster(cfg)
        assert [n.clock_offset_us for n in a.nodes] == [n.clock_offset_us for n in b.nodes]

    def test_run_for_advances_clock(self):
        c = Cluster(ClusterConfig())
        c.run_for(ms(5))
        assert c.sim.now == pytest.approx(ms(5))

    def test_tick_phase_randomised_per_node_when_staggered(self):
        cfg = ClusterConfig(machine=MachineConfig(n_nodes=4), kernel=KernelConfig())
        c = Cluster(cfg)
        phases = {c.nodes[i].ticks.phase(0) for i in range(4)}
        assert len(phases) == 4

    def test_global_tick_alignment_with_sync(self):
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=3),
            kernel=KernelConfig.prototype(),
            cosched=CoschedConfig(enabled=True, sync_clock=True),
        )
        c = Cluster(cfg)
        t = 1_234_567.0
        nexts = [n.ticks.next_boundary(0, t) for n in c.nodes]
        # All nodes tick within the clock-sync residual of each other.
        assert max(nexts) - min(nexts) <= 2 * c.switch.read_error_us + 1e-6
