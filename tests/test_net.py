"""Fabric delivery timing and the switch clock."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.net.fabric import Fabric
from repro.net.switch import SwitchClock
from repro.sim.core import Simulator


class TestNetworkConfig:
    def test_p2p_time_internode(self):
        net = NetworkConfig(latency_us=24.0, per_byte_us=0.001)
        assert net.p2p_time(1000, same_node=False) == pytest.approx(25.0)

    def test_p2p_time_intranode_cheaper(self):
        net = NetworkConfig()
        assert net.p2p_time(8, True) < net.p2p_time(8, False)


class TestFabric:
    def test_delivery_time_and_payload(self):
        sim = Simulator()
        fab = Fabric(sim, NetworkConfig(latency_us=24.0, per_byte_us=0.0005))
        got = []
        arrival = fab.transmit(0, 1, 8, "hello", got.append)
        assert arrival == pytest.approx(24.0 + 8 * 0.0005)
        sim.run()
        assert got == ["hello"]
        assert sim.now == pytest.approx(arrival)

    def test_intra_node_uses_shm_latency(self):
        sim = Simulator()
        net = NetworkConfig(latency_us=24.0, shm_latency_us=3.0, per_byte_us=0.0)
        fab = Fabric(sim, net)
        assert fab.transmit(2, 2, 0, None, lambda m: None) == pytest.approx(3.0)

    def test_stats(self):
        sim = Simulator()
        fab = Fabric(sim, NetworkConfig())
        fab.transmit(0, 1, 100, None, lambda m: None)
        fab.transmit(1, 1, 50, None, lambda m: None)
        assert fab.stats.messages == 2
        assert fab.stats.bytes == 150
        assert fab.stats.intra_node == 1

    def test_negative_bytes_raise(self):
        fab = Fabric(Simulator(), NetworkConfig())
        with pytest.raises(ValueError):
            fab.transmit(0, 1, -1, None, lambda m: None)

    def test_ordering_preserved_same_pair(self):
        sim = Simulator()
        fab = Fabric(sim, NetworkConfig(per_byte_us=0.0))
        got = []
        fab.transmit(0, 1, 8, "first", got.append)
        fab.transmit(0, 1, 8, "second", got.append)
        sim.run()
        assert got == ["first", "second"]


class TestSwitchClock:
    def test_read_error_bounded(self):
        clk = SwitchClock(np.random.default_rng(0), read_error_us=2.0)
        errs = [clk.read(1000.0) - 1000.0 for _ in range(200)]
        assert all(abs(e) <= 2.0 for e in errs)
        assert clk.reads == 200

    def test_zero_error_exact(self):
        clk = SwitchClock(np.random.default_rng(0), read_error_us=0.0)
        assert clk.read(123.0) == 123.0

    def test_negative_error_raises(self):
        with pytest.raises(ValueError):
            SwitchClock(np.random.default_rng(0), read_error_us=-1.0)
