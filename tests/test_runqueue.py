"""Run queues: dispatch order, lazy removal, steal filtering, compaction."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.runqueue import _COMPACT_MIN_ENTRIES, RunQueue
from repro.kernel.thread import Thread


def make_thread(priority, name="t", allow_steal=True):
    return Thread(
        None, name=name, priority=priority, node_id=0, affinity_cpu=0, allow_steal=allow_steal
    )


class TestBasics:
    def test_empty(self):
        q = RunQueue()
        assert len(q) == 0
        assert not q
        assert q.pop() is None
        assert q.best_priority() is None
        assert q.peek() is None

    def test_push_pop(self):
        q = RunQueue()
        t = make_thread(60)
        q.push(t)
        assert len(q) == 1
        assert q.pop() is t
        assert len(q) == 0

    def test_pop_clears_entry(self):
        q = RunQueue()
        t = make_thread(60)
        q.push(t)
        q.pop()
        assert t.rq_entry is None

    def test_lower_priority_value_pops_first(self):
        q = RunQueue()
        lo, hi = make_thread(100), make_thread(30)
        q.push(lo)
        q.push(hi)
        assert q.pop() is hi
        assert q.pop() is lo

    def test_fifo_among_equals(self):
        q = RunQueue()
        ts = [make_thread(60, name=f"t{i}") for i in range(5)]
        for t in ts:
            q.push(t)
        assert [q.pop() for _ in range(5)] == ts

    def test_double_push_raises(self):
        q = RunQueue()
        t = make_thread(60)
        q.push(t)
        with pytest.raises(RuntimeError):
            q.push(t)

    def test_best_priority(self):
        q = RunQueue()
        q.push(make_thread(90))
        q.push(make_thread(56))
        assert q.best_priority() == 56


class TestRemoval:
    def test_remove_middle(self):
        q = RunQueue()
        a, b, c = make_thread(60), make_thread(60), make_thread(60)
        for t in (a, b, c):
            q.push(t)
        q.remove(b)
        assert len(q) == 2
        assert q.pop() is a
        assert q.pop() is c

    def test_remove_not_queued_raises(self):
        q = RunQueue()
        with pytest.raises(RuntimeError):
            q.remove(make_thread(60))

    def test_remove_then_repush_goes_to_back(self):
        q = RunQueue()
        a, b = make_thread(60), make_thread(60)
        q.push(a)
        q.push(b)
        q.remove(a)
        q.push(a)
        assert q.pop() is b
        assert q.pop() is a

    def test_reprioritise_via_remove_push(self):
        q = RunQueue()
        a, b = make_thread(60), make_thread(60)
        q.push(a)
        q.push(b)
        q.remove(b)
        b.priority = 30
        q.push(b)
        assert q.pop() is b


class TestStealable:
    def test_pop_stealable_skips_bound(self):
        q = RunQueue()
        bound = make_thread(30, allow_steal=False)
        loose = make_thread(60, allow_steal=True)
        q.push(bound)
        q.push(loose)
        assert q.best_stealable_priority() == 60
        assert q.pop_stealable() is loose
        assert len(q) == 1

    def test_pop_stealable_none_when_all_bound(self):
        q = RunQueue()
        q.push(make_thread(30, allow_steal=False))
        assert q.pop_stealable() is None
        assert q.best_stealable_priority() is None

    def test_pop_stealable_best_first(self):
        q = RunQueue()
        worse = make_thread(90)
        better = make_thread(56)
        q.push(worse)
        q.push(better)
        assert q.pop_stealable() is better

    def test_threads_iterates_live(self):
        q = RunQueue()
        a, b = make_thread(60), make_thread(70)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert list(q.threads()) == [b]


class TestCompaction:
    """Stale entries must not accumulate without bound (sim/core.py's
    dead > live >= threshold in-place compaction, mirrored here)."""

    def test_mass_removal_compacts_heap(self):
        q = RunQueue()
        keep = [make_thread(50, name=f"k{i}") for i in range(4)]
        churn = [make_thread(80, name=f"c{i}") for i in range(2 * _COMPACT_MIN_ENTRIES)]
        for t in keep + churn:
            q.push(t)
        for t in churn:
            q.remove(t)
        assert len(q) == len(keep)
        # Compaction fired: dead weight was dropped back under the floor
        # instead of accumulating one tombstone per removal.
        dead = len(q._heap) - len(q)
        assert dead < _COMPACT_MIN_ENTRIES

    def test_compaction_preserves_order_and_content(self):
        q = RunQueue()
        keep = [make_thread(p, name=f"k{p}") for p in (30, 60, 60, 90)]
        churn = [make_thread(70) for _ in range(_COMPACT_MIN_ENTRIES + 5)]
        for t in keep + churn:
            q.push(t)
        for t in churn:
            q.remove(t)
        assert [q.pop() for _ in range(len(keep))] == keep

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=2),
                      st.integers(min_value=0, max_value=127)),
            max_size=300,
        )
    )
    def test_heap_stays_bounded(self, ops):
        """Under any push/remove/pop interleaving the physical heap stays
        within the compaction bound: dead entries never exceed
        max(threshold, live)."""
        q = RunQueue()
        queued = []
        serial = 0
        for op, prio in ops:
            if op == 0:
                t = make_thread(prio, name=str(serial))
                serial += 1
                q.push(t)
                queued.append(t)
            elif op == 1 and queued:
                q.remove(queued.pop(prio % len(queued)))
            elif op == 2:
                t = q.pop()
                if t is not None:
                    queued.remove(t)
            assert len(q) == len(queued)
            dead = len(q._heap) - len(queued)
            assert dead <= max(_COMPACT_MIN_ENTRIES, len(queued))
        drained = []
        while q:
            drained.append(q.pop())
        assert sorted(drained, key=id) == sorted(queued, key=id)


class TestPropertyOrder:
    @given(st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=50))
    def test_pop_order_is_stable_priority_sort(self, priorities):
        q = RunQueue()
        threads = [make_thread(p, name=str(i)) for i, p in enumerate(priorities)]
        for t in threads:
            q.push(t)
        popped = []
        while q:
            popped.append(q.pop())
        keys = [(t.priority, threads.index(t)) for t in popped]
        assert keys == sorted(keys)

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
            min_size=1,
            max_size=40,
        ),
        st.sets(st.integers(min_value=0, max_value=39)),
    )
    def test_removal_never_corrupts_count(self, specs, to_remove):
        q = RunQueue()
        threads = [make_thread(p, allow_steal=s) for p, s in specs]
        for t in threads:
            q.push(t)
        removed = 0
        for idx in to_remove:
            if idx < len(threads):
                q.remove(threads[idx])
                removed += 1
        assert len(q) == len(threads) - removed
        drained = 0
        while q.pop() is not None:
            drained += 1
        assert drained == len(threads) - removed
