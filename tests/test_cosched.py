"""The co-scheduler daemon: registration, priority cycling, alignment,
detach/attach, exit."""

import pytest

from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    PRIO_NORMAL,
)
from repro.cosched.coscheduler import PIPE_LATENCY_US, JobCoscheduler
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import ms, s


def build(n_ranks=4, tpn=2, period_us=ms(100), duty=0.8, favored=30, unfavored=100,
          kernel=None, body=None, seed=0):
    cos = CoschedConfig(
        enabled=True,
        period_us=period_us,
        duty_cycle=duty,
        favored_priority=favored,
        unfavored_priority=unfavored,
    )
    # Note: the co-scheduler's sleeps are tick-quantised, so test periods
    # must be multiples of the physical tick — big_tick=2 gives a 20 ms
    # tick against the 100 ms test period (the paper's real configuration,
    # 5 s period over 250 ms ticks, has the same 5:1-plus relationship).
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
        kernel=kernel if kernel is not None else KernelConfig.prototype(big_tick=2),
        cosched=cos,
        mpi=MpiConfig(progress_threads_enabled=False),
        seed=seed,
    )
    cluster = Cluster(cfg)

    if body is None:
        def body(rank, api):
            while True:
                yield from api.compute(ms(500))

    job = MpiJob(cluster, cluster.place(n_ranks, tpn), body, config=cfg.mpi)
    jc = JobCoscheduler(cluster, job, cos)
    return cluster, job, jc


class TestRegistration:
    def test_tasks_register_via_pipe(self):
        cluster, job, jc = build()
        cluster.sim.run_until(PIPE_LATENCY_US + 1)
        # Pipe messages delivered but applied at the next window flip.
        nc = jc.node_coscheds[0]
        assert len(nc._pending) == 2  # two ranks on node 0

    def test_tasks_boosted_after_first_window(self):
        cluster, job, jc = build(period_us=ms(100))
        cluster.sim.run_until(ms(250))
        assert all(t.priority == 30 for t in job.tasks)

    def test_one_cosched_daemon_per_node(self):
        cluster, job, jc = build(n_ranks=6, tpn=2)
        assert sorted(jc.node_coscheds) == [0, 1, 2]

    def test_requires_enabled_config(self):
        cfg = CoschedConfig(enabled=False)
        cluster, job, _ = build()
        with pytest.raises(ValueError):
            JobCoscheduler(cluster, job, cfg)


class TestPriorityCycling:
    def test_priority_alternates_with_windows(self):
        cluster, job, jc = build(period_us=ms(100), duty=0.8)
        samples = []

        def sample():
            samples.append((cluster.sim.now, job.tasks[0].priority))
            if cluster.sim.now < ms(600):
                cluster.sim.schedule(ms(5), sample)

        cluster.sim.schedule(ms(5), sample)
        cluster.sim.run_until(ms(650))
        prios = {p for _, p in samples}
        assert 30 in prios and 100 in prios
        # Duty cycle: favored samples ~4x unfavored ones (80/20).
        favored = sum(1 for _, p in samples if p == 30)
        unfavored = sum(1 for _, p in samples if p == 100)
        assert favored > 2 * unfavored

    def test_windows_aligned_across_nodes_when_synced(self):
        """The whole point of the switch-clock sync: flips coincide
        cluster-wide without daemon-to-daemon communication."""
        flips: dict[int, list] = {0: [], 1: []}
        cluster, job, jc = build(n_ranks=4, tpn=2, period_us=ms(100))
        for node_id in (0, 1):
            task = job.tasks[node_id * 2]

            def watch(th, old, new, node_id=node_id):
                flips[node_id].append((cluster.sim.now, new))

            task.on_priority_change = watch
        cluster.sim.run_until(ms(600))
        assert len(flips[0]) >= 4 and len(flips[1]) >= 4
        # A node whose grid placed a cycle boundary before the pipe
        # registration completed has one degenerate leading flip; align
        # both sequences on favor flips before comparing.
        favor0 = [t for t, p in flips[0] if p == 30]
        favor1 = [t for t, p in flips[1] if p == 30]
        assert len(favor0) >= 3 and len(favor1) >= 3
        # Both sequences start at the first shared grid boundary; the run
        # cutoff may clip one trailing flip, so zip from the front.
        for ta, tb in zip(favor0, favor1):
            # Within tick quantisation + clock-sync residual.
            assert abs(ta - tb) <= cluster.config.kernel.physical_tick_period_us + 5.0

    def test_cycles_counted(self):
        cluster, job, jc = build(period_us=ms(50))
        cluster.sim.run_until(ms(500))
        assert jc.node_coscheds[0].cycles >= 3


class TestDetachAttach:
    def test_detach_restores_normal_priority(self):
        cluster, job, jc = build(period_us=ms(100))
        cluster.sim.run_until(ms(250))
        assert job.tasks[0].priority == 30
        job.apis[0].cosched_detach()
        cluster.sim.run_until(ms(450))
        assert job.tasks[0].priority == PRIO_NORMAL
        # Others still co-scheduled.
        assert job.tasks[1].priority in (30, 100)

    def test_attach_resumes_cycling(self):
        cluster, job, jc = build(period_us=ms(100))
        cluster.sim.run_until(ms(250))
        job.apis[0].cosched_detach()
        cluster.sim.run_until(ms(450))
        job.apis[0].cosched_attach()
        cluster.sim.run_until(ms(700))
        assert job.tasks[0].priority in (30, 100)


class TestExit:
    def test_cosched_exits_after_job(self):
        def body(rank, api):
            yield from api.compute(ms(120))

        cluster, job, jc = build(period_us=ms(100), body=body)
        cluster.sim.run_until(s(1.5))
        assert job.done
        for nc in jc.node_coscheds.values():
            assert nc.thread.finished

    def test_finished_tasks_not_touched(self):
        def body(rank, api):
            yield from api.compute(ms(10))

        cluster, job, jc = build(period_us=ms(100), body=body)
        cluster.sim.run_until(s(1))
        assert job.done  # no crash from set_priority on finished threads


class TestAlignment:
    def test_flips_land_on_period_grid(self):
        cluster, job, jc = build(period_us=ms(100))
        node = cluster.nodes[0]
        flips = []
        job.tasks[0].on_priority_change = lambda th, old, new: flips.append(
            (cluster.sim.now, new)
        )
        cluster.sim.run_until(ms(650))
        for t, p in flips:
            if p == 30:  # favor flip: start of a cycle
                local = node.local_time(t)
                frac = local % ms(100)
                tick = cluster.config.kernel.physical_tick_period_us
                assert frac <= tick + ms(1) or frac >= ms(100) - tick - ms(1)
