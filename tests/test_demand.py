"""Demand-based (message-driven) co-scheduling."""

import pytest

from repro.config import ClusterConfig, MachineConfig, MpiConfig, NoiseConfig
from repro.cosched.demand import DemandConfig, DemandCoscheduler
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import ms, s


def build(body, n_ranks=4, tpn=4, demand=None, seed=0):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
        mpi=MpiConfig(progress_threads_enabled=False),
        noise=NoiseConfig(),
        seed=seed,
    )
    cluster = Cluster(cfg)
    job = MpiJob(cluster, cluster.place(n_ranks, tpn), body, config=cfg.mpi)
    dc = DemandCoscheduler(cluster, job, demand if demand is not None else DemandConfig())
    return cluster, job, dc


class TestDemandConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandConfig(boost_priority=200)
        with pytest.raises(ValueError):
            DemandConfig(boost_priority=70, base_priority=60)
        with pytest.raises(ValueError):
            DemandConfig(quantum_us=0.0)


class TestDemandCoscheduler:
    def test_message_boosts_recipient(self):
        got = {}

        def body(rank, api):
            if rank == 0:
                yield from api.compute(ms(1))
                yield from api.send(1, "t", "x")
                yield from api.compute(ms(5))
            else:
                got["v"] = yield from api.recv(0, "t")
                got["prio_after_recv"] = api.world.rank_threads[1].priority
                yield from api.compute(ms(5))

        cluster, job, dc = build(body, n_ranks=2, tpn=2)
        job.run(horizon_us=s(5))
        assert got["v"] == "x"
        assert got["prio_after_recv"] == 45
        assert dc.boosts >= 1

    def test_boost_decays_after_quantum(self):
        def body(rank, api):
            if rank == 0:
                yield from api.send(1, "t", None)
            else:
                yield from api.recv(0, "t")
                yield from api.compute(ms(50))  # long quiet compute

        cluster, job, dc = build(body, n_ranks=2, tpn=2, demand=DemandConfig(quantum_us=ms(5)))
        cluster.sim.run_until(ms(30))
        assert job.tasks[1].priority == 60  # decayed back

    def test_refresh_extends_quantum(self):
        def body(rank, api):
            if rank == 0:
                for i in range(10):
                    yield from api.compute(ms(2))
                    yield from api.send(1, ("t", i), None)
            else:
                for i in range(10):
                    yield from api.recv(0, ("t", i))
                yield from api.compute(ms(1))

        cluster, job, dc = build(body, n_ranks=2, tpn=2, demand=DemandConfig(quantum_us=ms(5)))
        cluster.sim.run_until(ms(15))
        # Traffic every 2ms refreshes the 5ms quantum: still boosted.
        assert job.tasks[1].priority == 45

    def test_double_listener_rejected(self):
        def body(rank, api):
            yield from api.compute(ms(1))

        cluster, job, dc = build(body)
        with pytest.raises(RuntimeError, match="listener"):
            DemandCoscheduler(cluster, job)

    def test_detach_restores(self):
        def body(rank, api):
            if rank == 0:
                yield from api.send(1, "t", None)
                yield from api.compute(ms(20))
            else:
                yield from api.recv(0, "t")
                yield from api.compute(ms(20))

        cluster, job, dc = build(body, n_ranks=2, tpn=2)
        cluster.sim.run_until(ms(5))
        assert job.tasks[1].priority == 45
        dc.detach()
        assert job.tasks[1].priority == 60
        assert job.world.arrival_listener is None

    def test_finished_tasks_untouched(self):
        def body(rank, api):
            if rank == 0:
                yield from api.send(1, "t", None)
            else:
                yield from api.recv(0, "t")

        cluster, job, dc = build(body, n_ranks=2, tpn=2)
        job.run(horizon_us=s(5))
        cluster.run_for(ms(50))  # decay events fire post-finish: no crash
        assert job.done
